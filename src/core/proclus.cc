#include "core/proclus.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <numeric>
#include <span>
#include <utility>

#include "common/hash.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/consumers.h"
#include "core/find_dimensions.h"
#include "core/greedy.h"
#include "core/model_io.h"
#include "core/passes.h"
#include "distance/metric.h"
#include "distance/segmental.h"
#include "sketch/plan.h"

namespace proclus {

Status ProclusParams::Validate(size_t num_points, size_t dims) const {
  if (num_clusters == 0)
    return Status::InvalidArgument("num_clusters must be >= 1");
  if (num_points < num_clusters)
    return Status::InvalidArgument("fewer points than clusters");
  if (dims < 2) return Status::InvalidArgument("need at least 2 dimensions");
  if (avg_dims < 2.0)
    return Status::InvalidArgument("avg_dims must be >= 2");
  if (avg_dims > static_cast<double>(dims))
    return Status::InvalidArgument("avg_dims exceeds space dimensionality");
  size_t total = static_cast<size_t>(
      std::llround(avg_dims * static_cast<double>(num_clusters)));
  if (total > num_clusters * dims)
    return Status::InvalidArgument("k*l exceeds k*d dimension slots");
  if (sample_factor == 0)
    return Status::InvalidArgument("sample_factor must be >= 1");
  if (candidate_factor == 0)
    return Status::InvalidArgument("candidate_factor must be >= 1");
  if (min_deviation <= 0.0 || min_deviation > 1.0)
    return Status::InvalidArgument("min_deviation must be in (0, 1]");
  if (max_iterations == 0)
    return Status::InvalidArgument("max_iterations must be >= 1");
  if (num_restarts == 0)
    return Status::InvalidArgument("num_restarts must be >= 1");
  if (block_rows == 0)
    return Status::InvalidArgument("block_rows must be >= 1");
  if (!checkpoint.path.empty() && checkpoint.every_iterations == 0)
    return Status::InvalidArgument(
        "checkpoint.every_iterations must be >= 1 when a checkpoint path "
        "is set");
  return Status::OK();
}

namespace internal {

Matrix LocalityStats(const Dataset& dataset,
                     const std::vector<size_t>& medoids) {
  MemorySource source(dataset);
  auto coords = source.Fetch(medoids);
  PROCLUS_CHECK(coords.ok());
  auto result = LocalityStatsPass(source, *coords);
  PROCLUS_CHECK(result.ok());
  return std::move(result).value();
}

Matrix ClusterStats(const Dataset& dataset,
                    const std::vector<size_t>& medoids,
                    const std::vector<int>& labels) {
  MemorySource source(dataset);
  auto coords = source.Fetch(medoids);
  PROCLUS_CHECK(coords.ok());
  auto result = ClusterStatsPass(source, *coords, labels);
  PROCLUS_CHECK(result.ok());
  return std::move(result).value();
}

std::vector<size_t> FindBadMedoids(const std::vector<int>& labels, size_t k,
                                   double min_deviation) {
  std::vector<size_t> count(k, 0);
  size_t n = labels.size();
  for (int label : labels) {
    if (label == kOutlierLabel) continue;
    PROCLUS_CHECK(label >= 0 && static_cast<size_t>(label) < k);
    ++count[static_cast<size_t>(label)];
  }
  const double threshold =
      (static_cast<double>(n) / static_cast<double>(k)) * min_deviation;
  std::vector<size_t> bad;
  size_t smallest = 0;
  for (size_t i = 1; i < k; ++i)
    if (count[i] < count[smallest]) smallest = i;
  bad.push_back(smallest);
  for (size_t i = 0; i < k; ++i) {
    if (i == smallest) continue;
    if (static_cast<double>(count[i]) < threshold) bad.push_back(i);
  }
  return bad;
}

}  // namespace internal

namespace {

// Reused buffers of ReplaceBadMedoids: the free-slot list is rebuilt
// every iteration but never reallocated once it reaches capacity.
struct MedoidScratch {
  std::vector<uint8_t> used;       // One mark per candidate-pool slot.
  std::vector<size_t> free_slots;  // Unused slots, ascending before shuffle.
};

// Replaces the clusters listed in `bad` within `medoids` (positions into
// the candidate pool) by random unused candidates. The shuffle draws
// depend only on the free-slot COUNT (pool size minus k), never on the
// slot values, so two calls from identical Rng states advance the stream
// identically whatever the medoid sets are.
void ReplaceBadMedoids(size_t pool_size, const std::vector<size_t>& bad,
                       std::vector<size_t>* medoid_slots, Rng& rng,
                       MedoidScratch& scratch) {
  scratch.used.assign(pool_size, 0);
  for (size_t slot : *medoid_slots) scratch.used[slot] = 1;
  scratch.free_slots.clear();
  for (size_t slot = 0; slot < pool_size; ++slot)
    if (!scratch.used[slot]) scratch.free_slots.push_back(slot);
  rng.Shuffle(scratch.free_slots);
  size_t next = 0;
  for (size_t cluster : bad) {
    if (next >= scratch.free_slots.size()) break;  // Pool exhausted.
    (*medoid_slots)[cluster] = scratch.free_slots[next++];
  }
}

// Copies the k x d coordinate matrix of the medoids at `slots` within the
// candidate coordinate matrix into `out`, reallocating only when the
// shape changes.
void SlotsToCoords(const Matrix& candidate_coords,
                   const std::vector<size_t>& slots, Matrix* out) {
  if (out->rows() != slots.size() ||
      out->cols() != candidate_coords.cols() ||
      out->data().size() != slots.size() * candidate_coords.cols()) {
    *out = Matrix(slots.size(), candidate_coords.cols());
  }
  for (size_t i = 0; i < slots.size(); ++i) {
    auto src = candidate_coords.row(slots[i]);
    std::copy(src.begin(), src.end(), out->row(i).begin());
  }
}

// Best state found by one hill-climbing restart.
struct ClimbResult {
  double objective = std::numeric_limits<double>::infinity();
  std::vector<size_t> slots;
  std::vector<DimensionSet> dims;
  std::vector<int> labels;
  size_t iterations = 0;
  size_t improvements = 0;
};

// Complete loop-top state of one hill-climbing restart — everything a
// checkpoint must capture to replay the remaining iterations exactly
// (the locality statistics X are deliberately NOT part of it: they are
// regenerated on resume by a bootstrap scan of `current`, bit-identical
// to the fused variant extraction that produced them mid-run). Callers
// seed `current` (fresh start) or all fields (resume) before the climb.
struct ClimbState {
  std::vector<size_t> current;   // Medoid slots under evaluation.
  ClimbResult out;               // Best of this restart so far.
  std::vector<size_t> bad;       // Bad medoids of out.slots.
  size_t since_improvement = 0;
};

// Invoked at the top of every hill-climbing iteration, before any work
// of that iteration, with the restart's complete state. Used by
// RunProclusOnSource to write periodic checkpoints; `force_save` asks for
// an immediate save regardless of the period (the cancel-to-checkpoint
// path). A failure aborts the climb.
using ClimbHook = std::function<Status(const ClimbState&, bool force_save)>;

// Long-lived consumers and buffers shared by every restart of the fused
// climb, so steady-state iterations allocate nothing.
struct FusedScratch {
  LocalityStatsConsumer locality;
  AssignConsumer assign;
  DeviationConsumer deviation;
  Matrix medoid_coords;  // Coordinates of the current medoid set.
  Matrix spec_coords;    // Union coordinates of the speculative sets.
  MedoidScratch medoids;
  // Per-candidate-slot distance columns shared across scans and restarts:
  // hill climbing replaces ~1 of k medoids per iteration, so most of each
  // locality scan's per-point distances were already computed by an
  // earlier scan. Keyed by candidate slot id, which never changes within
  // a run.
  MedoidDistanceCache dist_cache;
  std::vector<size_t> next_a;      // Next set if this iteration improves.
  std::vector<size_t> next_b;      // Next set if it does not.
  std::vector<size_t> union_slots;
};

constexpr size_t kNoVariant = static_cast<size_t>(-1);

// One hill-climbing restart on the fused scan engine: two physical scans
// per iteration.
//
//   Scan 1  assignment + per-cluster centroid accumulation
//   Scan 2  deviation evaluation + locality statistics of the NEXT
//           medoid set
//
// The classic loop needs a third and fourth scan because the locality
// statistics of the next iteration's medoids and the centroids of the
// current labels each took a dedicated pass. Fusing the locality scan
// works because the medoid replacement depends only on the assignment:
// before the evaluation scan runs, both possible next medoid sets — the
// one chosen if this iteration improves the objective and the one chosen
// if it does not — are already known, so the scan computes locality
// statistics for both (sharing per-point distances over the union of
// their medoids) and the loop keeps whichever branch materializes.
// The two replacement draws use identical Rng sequences (see
// ReplaceBadMedoids), so the random stream — and therefore every result —
// stays bit-identical to the classic engine.
Status FusedClimb(const PointSource& source, const ProclusParams& params,
                  const Matrix& candidate_coords, ClimbState& st, Rng& rng,
                  const ScanExecutor& executor, FusedScratch& s,
                  RunStats& stats, const ClimbHook& hook,
                  const SketchPlan* sketch) {
  s.locality.SetSketch(sketch);
  s.assign.SetSketch(sketch);
  const size_t k = params.num_clusters;
  const size_t pool = candidate_coords.rows();
  std::vector<size_t>& current = st.current;
  ClimbResult& out = st.out;
  std::vector<size_t>& bad = st.bad;  // Bad medoids of the best set so far.
  size_t& since_improvement = st.since_improvement;

  // Bootstrap: the locality statistics of the initial medoid set are the
  // only input the first iteration needs that no earlier scan produced.
  // On resume this regenerates the X a mid-run iteration would have
  // extracted from the fused evaluation scan — bit-identically, since
  // variant extraction equals a dedicated scan of the same medoid set.
  SlotsToCoords(candidate_coords, current, &s.medoid_coords);
  {
    std::vector<std::vector<size_t>> variant_rows(1);
    variant_rows[0].resize(k);
    std::iota(variant_rows[0].begin(), variant_rows[0].end(), size_t{0});
    PROCLUS_RETURN_IF_ERROR(s.locality.Bind(
        &s.medoid_coords, std::move(variant_rows),
        std::span<const size_t>(current), &s.dist_cache));
  }
  PROCLUS_RETURN_IF_ERROR(executor.Run(source, {&s.locality}));
  ++stats.bootstrap_scans;
  Matrix X = s.locality.TakeStats();

  while (out.iterations < params.max_iterations &&
         since_improvement < params.max_no_improve) {
    if (params.cancel.active()) {
      stats.cancel_checks += 1;
      Status cancelled = params.cancel.Check();
      if (!cancelled.ok()) {
        // Cancel-to-checkpoint: persist the exact loop-top state (RNG
        // included) so a resumed run replays the remaining iterations
        // bit-identically.
        if (hook) PROCLUS_RETURN_IF_ERROR(hook(st, /*force_save=*/true));
        return cancelled;
      }
    }
    if (hook) PROCLUS_RETURN_IF_ERROR(hook(st, /*force_save=*/false));
    ++out.iterations;
    auto dims = FindDimensions(X, params.avg_dims);
    PROCLUS_RETURN_IF_ERROR(dims.status());

    // Scan 1: assignment fused with centroid accumulation.
    PROCLUS_RETURN_IF_ERROR(s.assign.Bind(&s.medoid_coords, &*dims,
                                          params.segmental_normalization,
                                          /*accumulate_centroids=*/true));
    PROCLUS_RETURN_IF_ERROR(executor.Run(source, {&s.assign}));
    ++stats.iterative_scans;

    // Draw both speculative next medoid sets. Branch A materializes when
    // this iteration improves the objective (base = current set, bad
    // medoids from the fresh labels); branch B when it does not (base =
    // best set so far, its stored bad medoids). The main rng advances
    // through branch A's draw; branch B uses a copy that ends in the
    // identical state.
    std::vector<size_t> bad_a =
        internal::FindBadMedoids(s.assign.labels(), k, params.min_deviation);
    s.next_a = current;
    const bool have_b = !out.slots.empty();
    Rng rng_b = rng;
    ReplaceBadMedoids(pool, bad_a, &s.next_a, rng, s.medoids);
    const bool exhausted_a = s.next_a == current;
    bool exhausted_b = false;
    if (have_b) {
      s.next_b = out.slots;
      ReplaceBadMedoids(pool, bad, &s.next_b, rng_b, s.medoids);
      exhausted_b = s.next_b == out.slots;
    }

    // A branch's locality statistics are only worth computing when the
    // loop would actually continue with that branch.
    const bool last_iteration = out.iterations == params.max_iterations;
    const bool need_a = !last_iteration && !exhausted_a;
    const bool need_b = have_b && !last_iteration && !exhausted_b &&
                        since_improvement + 1 < params.max_no_improve;

    // Scan 2: deviation evaluation, fused with the speculative locality
    // statistics whenever a next iteration is possible.
    PROCLUS_RETURN_IF_ERROR(
        s.deviation.Bind(&s.assign.labels(), &s.assign.centroids(),
                         &s.assign.cluster_sizes(), &*dims));
    size_t variant_a = kNoVariant;
    size_t variant_b = kNoVariant;
    if (need_a || need_b) {
      s.union_slots.clear();
      std::vector<std::vector<size_t>> variant_rows;
      if (need_a) {
        s.union_slots.assign(s.next_a.begin(), s.next_a.end());
        std::vector<size_t> rows(k);
        std::iota(rows.begin(), rows.end(), size_t{0});
        variant_rows.push_back(std::move(rows));
        variant_a = 0;
      }
      if (need_b && need_a && s.next_b == s.next_a) {
        // In a non-improving iteration current == best, so both branches
        // see the same bad medoids and draw the same replacements: the
        // speculative sets coincide. Identical medoid lists produce
        // identical deltas and identical per-variant sums, so branch B
        // shares branch A's statistics instead of accumulating the same
        // locality twice (this is the common case on long plateaus and
        // was the fused engine's single largest overhead over classic).
        variant_b = variant_a;
      } else if (need_b) {
        std::vector<size_t> rows(k);
        for (size_t i = 0; i < k; ++i) {
          const size_t slot = s.next_b[i];
          size_t pos = 0;
          while (pos < s.union_slots.size() && s.union_slots[pos] != slot)
            ++pos;
          if (pos == s.union_slots.size()) s.union_slots.push_back(slot);
          rows[i] = pos;
        }
        variant_b = variant_rows.size();
        variant_rows.push_back(std::move(rows));
      }
      SlotsToCoords(candidate_coords, s.union_slots, &s.spec_coords);
      PROCLUS_RETURN_IF_ERROR(s.locality.Bind(
          &s.spec_coords, std::move(variant_rows),
          std::span<const size_t>(s.union_slots), &s.dist_cache));
      PROCLUS_RETURN_IF_ERROR(
          executor.Run(source, {&s.deviation, &s.locality}));
    } else {
      PROCLUS_RETURN_IF_ERROR(executor.Run(source, {&s.deviation}));
    }
    ++stats.iterative_scans;
    const double objective = s.deviation.objective();

    const bool improved = objective < out.objective;
    if (improved) {
      out.objective = objective;
      out.slots = current;
      out.dims = std::move(dims).value();
      out.labels = s.assign.labels();
      bad = std::move(bad_a);
      ++out.improvements;
      since_improvement = 0;
    } else {
      ++since_improvement;
    }
    // invariant: the first iteration always improves on the infinite
    // starting objective, so a non-improving iteration has a stored best
    // set and branch B was drawn.
    PROCLUS_CHECK(improved || have_b);
    const bool exhausted = improved ? exhausted_a : exhausted_b;
    if (exhausted) break;  // Candidate pool exhausted.
    current = improved ? s.next_a : s.next_b;
    if (last_iteration || since_improvement >= params.max_no_improve) break;
    // The loop continues: the locality statistics of `current` came out
    // of the evaluation scan above.
    const size_t variant = improved ? variant_a : variant_b;
    // invariant: need_a/need_b cover exactly the continue conditions
    // checked right above, so the surviving branch was computed.
    PROCLUS_CHECK(variant != kNoVariant);
    X = s.locality.TakeStats(variant);
    SlotsToCoords(candidate_coords, current, &s.medoid_coords);
  }
  return Status::OK();
}

// One hill-climbing restart on the classic pass-per-aggregate engine:
// four physical scans per iteration (locality, assignment, centroids,
// deviations). Kept as the measured before/after ablation for the fused
// engine; results are bit-identical.
Status ClassicClimb(const PointSource& source, const ProclusParams& params,
                    const Matrix& candidate_coords, ClimbState& st,
                    Rng& rng, const PassOptions& pass_options,
                    Matrix& medoid_coords, MedoidScratch& scratch,
                    const ClimbHook& hook, const SketchPlan* sketch) {
  const size_t k = params.num_clusters;
  std::vector<size_t>& current = st.current;
  ClimbResult& out = st.out;
  std::vector<size_t>& bad = st.bad;
  size_t& since_improvement = st.since_improvement;

  while (out.iterations < params.max_iterations &&
         since_improvement < params.max_no_improve) {
    if (params.cancel.active()) {
      if (pass_options.stats != nullptr) pass_options.stats->cancel_checks += 1;
      Status cancelled = params.cancel.Check();
      if (!cancelled.ok()) {
        // Cancel-to-checkpoint, as in FusedClimb.
        if (hook) PROCLUS_RETURN_IF_ERROR(hook(st, /*force_save=*/true));
        return cancelled;
      }
    }
    if (hook) PROCLUS_RETURN_IF_ERROR(hook(st, /*force_save=*/false));
    ++out.iterations;
    SlotsToCoords(candidate_coords, current, &medoid_coords);
    auto X = LocalityStatsPass(source, medoid_coords, pass_options, sketch);
    PROCLUS_RETURN_IF_ERROR(X.status());
    auto dims = FindDimensions(*X, params.avg_dims);
    PROCLUS_RETURN_IF_ERROR(dims.status());
    auto labels =
        AssignPointsPass(source, medoid_coords, *dims,
                         params.segmental_normalization, pass_options,
                         sketch);
    PROCLUS_RETURN_IF_ERROR(labels.status());
    auto objective =
        EvaluateClustersPass(source, *labels, *dims, pass_options);
    PROCLUS_RETURN_IF_ERROR(objective.status());

    if (*objective < out.objective) {
      out.objective = *objective;
      out.slots = current;
      out.dims = std::move(dims).value();
      out.labels = std::move(labels).value();
      bad = internal::FindBadMedoids(out.labels, k, params.min_deviation);
      ++out.improvements;
      since_improvement = 0;
    } else {
      ++since_improvement;
    }
    current = out.slots;
    ReplaceBadMedoids(candidate_coords.rows(), bad, &current, rng, scratch);
    if (current == out.slots) break;  // Candidate pool exhausted.
  }
  return Status::OK();
}

// Configuration fingerprint a checkpoint is bound to: every parameter
// that influences the numerical result, plus the data shape. num_threads,
// fuse_scans, and sketch are deliberately EXCLUDED — all three are proven
// bit-identical (see tests/core_engine_test.cc and
// tests/sketch_prune_test.cc), so a checkpoint written under one thread
// count, engine, or screening setting may be resumed under another.
uint64_t ParamsFingerprint(const ProclusParams& p, size_t n, size_t d) {
  Xxh64 h(/*seed=*/0x50434c5350524f43ULL);  // "PCLSPROC"
  auto put_u64 = [&h](uint64_t v) { h.Update(&v, sizeof(v)); };
  auto put_f64 = [&h](double v) { h.Update(&v, sizeof(v)); };
  put_u64(p.num_clusters);
  put_f64(p.avg_dims);
  put_u64(p.sample_factor);
  put_u64(p.candidate_factor);
  put_f64(p.min_deviation);
  put_u64(p.max_no_improve);
  put_u64(p.max_iterations);
  put_u64(p.num_restarts);
  put_u64(static_cast<uint64_t>(p.init_metric));
  put_u64(p.seed);
  put_u64(p.block_rows);
  put_u64((p.refine ? 1u : 0u) | (p.detect_outliers ? 2u : 0u) |
          (p.segmental_normalization ? 4u : 0u) |
          (p.two_step_init ? 8u : 0u));
  put_u64(n);
  put_u64(d);
  return h.Digest();
}

// Semantic validation of a fingerprint-matched checkpoint: every index
// must be in range and every per-cluster vector the right length, so a
// forged or stale file can never drive an out-of-bounds access. The
// integrity trailer already rules out accidental corruption; this rules
// out a checkpoint that is internally inconsistent with the run shape.
Status ValidateCheckpoint(const ProclusCheckpoint& ck,
                          const ProclusParams& params, size_t n, size_t d) {
  const size_t k = params.num_clusters;
  auto bad = [](const std::string& what) {
    return Status::Corruption("checkpoint is inconsistent: " + what);
  };
  if (ck.num_dims != d) return bad("dimensionality mismatch");
  if (ck.restart >= params.num_restarts) return bad("restart out of range");
  if (ck.candidates.size() < k || ck.candidates.size() > n)
    return bad("candidate pool size out of range");
  for (uint64_t c : ck.candidates)
    if (c >= n) return bad("candidate index out of range");
  const size_t pool = ck.candidates.size();
  auto check_slots = [&](const std::vector<uint64_t>& slots,
                         const char* name, bool may_be_empty) -> Status {
    if (slots.empty() && may_be_empty) return Status::OK();
    if (slots.size() != k)
      return bad(std::string(name) + " has wrong length");
    for (uint64_t s : slots)
      if (s >= pool) return bad(std::string(name) + " index out of range");
    return Status::OK();
  };
  PROCLUS_RETURN_IF_ERROR(
      check_slots(ck.climb_current, "climb_current", false));
  PROCLUS_RETURN_IF_ERROR(check_slots(ck.climb_slots, "climb_slots", true));
  PROCLUS_RETURN_IF_ERROR(check_slots(ck.best_slots, "best_slots", true));
  auto check_dims = [&](const std::vector<std::vector<uint32_t>>& lists,
                        const std::vector<uint64_t>& slots,
                        const char* name) -> Status {
    if (lists.size() != slots.size())
      return bad(std::string(name) + " count does not match medoids");
    for (const auto& list : lists) {
      if (list.size() < 2 || list.size() > d)
        return bad(std::string(name) + " entry has invalid size");
      for (size_t i = 0; i < list.size(); ++i) {
        if (list[i] >= d)
          return bad(std::string(name) + " dimension out of range");
        if (i > 0 && list[i] <= list[i - 1])
          return bad(std::string(name) + " entry is not strictly sorted");
      }
    }
    return Status::OK();
  };
  PROCLUS_RETURN_IF_ERROR(
      check_dims(ck.climb_dims, ck.climb_slots, "climb_dims"));
  PROCLUS_RETURN_IF_ERROR(check_dims(ck.best_dims, ck.best_slots,
                                     "best_dims"));
  auto check_labels = [&](const std::vector<int32_t>& labels,
                          const std::vector<uint64_t>& slots,
                          const char* name) -> Status {
    if (slots.empty()) {
      if (!labels.empty())
        return bad(std::string(name) + " present without medoids");
      return Status::OK();
    }
    if (labels.size() != n)
      return bad(std::string(name) + " has wrong length");
    for (int32_t label : labels)
      if (label != kOutlierLabel &&
          (label < 0 || static_cast<size_t>(label) >= k))
        return bad(std::string(name) + " value out of range");
    return Status::OK();
  };
  PROCLUS_RETURN_IF_ERROR(
      check_labels(ck.climb_labels, ck.climb_slots, "climb_labels"));
  PROCLUS_RETURN_IF_ERROR(
      check_labels(ck.best_labels, ck.best_slots, "best_labels"));
  if (ck.climb_bad.size() > k) return bad("climb_bad has wrong length");
  for (uint64_t c : ck.climb_bad)
    if (c >= k) return bad("climb_bad index out of range");
  if (ck.climb_iterations > params.max_iterations)
    return bad("climb_iterations out of range");
  if (ck.since_improvement > params.max_no_improve)
    return bad("since_improvement out of range");
  if (ck.climb_slots.empty() && ck.climb_iterations != 0)
    return bad("iterations recorded without a best set");
  return Status::OK();
}

// Rebuilds DimensionSets from the checkpoint's sorted index lists.
std::vector<DimensionSet> DimsFromLists(
    const std::vector<std::vector<uint32_t>>& lists, size_t d) {
  std::vector<DimensionSet> out;
  out.reserve(lists.size());
  for (const auto& list : lists) out.emplace_back(d, list);
  return out;
}

}  // namespace

Result<ProjectedClustering> RunProclusOnSource(const PointSource& source,
                                               const ProclusParams& params) {
  PROCLUS_RETURN_IF_ERROR(params.Validate(source.size(), source.dims()));
  Rng rng(params.seed);
  const size_t k = params.num_clusters;
  const size_t n = source.size();
  const size_t d = source.dims();
  RunStats stats;
  PassOptions pass_options{params.num_threads, params.block_rows, &stats,
                           params.retry};
  pass_options.cancel = params.cancel;
  pass_options.shard_soft_deadline = params.shard_soft_deadline;
  pass_options.max_hedges_per_shard = params.max_hedges_per_shard;
  if (params.cancel.active()) {
    stats.cancel_checks += 1;
    PROCLUS_RETURN_IF_ERROR(params.cancel.Check());
  }
  // Sketch plan for the whole run: a pure function of (seed, n, d), drawn
  // from a private Rng stream so the main `rng` above is untouched —
  // sketch on/off and checkpoint resume keep every other draw in place.
  const SketchPlan sketch_plan =
      params.sketch ? BuildSketchPlan(params.seed, n, d) : SketchPlan{};
  const SketchPlan* sketch = params.sketch ? &sketch_plan : nullptr;
  Timer total_timer;
  Timer phase_timer;

  // ----- Resume -----
  // A compatible checkpoint replaces phase 1 and the completed prefix of
  // the restart loop. The fingerprint binds it to this exact
  // configuration and data shape; a mismatch is an error (resuming a
  // different run would silently produce wrong results), while a missing
  // file just starts fresh.
  const uint64_t fingerprint = ParamsFingerprint(params, n, d);
  ProclusCheckpoint resume_ck;
  bool resuming = false;
  if (!params.checkpoint.path.empty() && params.checkpoint.resume) {
    auto loaded = LoadCheckpointFile(params.checkpoint.path);
    if (loaded.ok()) {
      if (loaded->fingerprint != fingerprint)
        return Status::InvalidArgument(
            "checkpoint '" + params.checkpoint.path +
            "' was written by a different run configuration");
      PROCLUS_RETURN_IF_ERROR(ValidateCheckpoint(*loaded, params, n, d));
      resume_ck = *std::move(loaded);
      resuming = true;
    } else if (loaded.status().code() != StatusCode::kNotFound) {
      return loaded.status();
    }
  }

  // ----- Phase 1: Initialization -----
  // Sample A*k points, then reduce to B*k medoid candidates by greedy
  // farthest-first (or take a plain random candidate set in the
  // ablation). Only these few points are ever fetched by position. A
  // resumed run reuses the checkpointed candidate pool — the restored
  // RNG state already reflects the draws this phase made.
  std::vector<size_t> candidates;  // Global point indices.
  // draws: invariant — the init path is selected by run config, and a
  // resumed run restores the RNG state whose position already includes
  // this phase's draws (see the note above), so stream position is
  // path-consistent.
  if (resuming) {
    candidates.assign(resume_ck.candidates.begin(),
                      resume_ck.candidates.end());
  } else if (params.two_step_init) {
    const size_t sample_size = std::min(n, params.sample_factor * k);
    const size_t candidate_size =
        std::max(k, std::min(sample_size, params.candidate_factor * k));
    std::vector<size_t> sample =
        rng.SampleWithoutReplacement(n, sample_size);
    auto sample_coords =
        FetchWithRetry(source, sample, params.retry, &stats, params.cancel);
    PROCLUS_RETURN_IF_ERROR(sample_coords.status());
    Dataset sample_dataset(std::move(sample_coords).value());
    std::vector<size_t> local(sample.size());
    std::iota(local.begin(), local.end(), size_t{0});
    std::vector<size_t> picked = GreedyPick(
        sample_dataset, local, candidate_size, params.init_metric, rng);
    candidates.reserve(picked.size());
    for (size_t local_index : picked)
      candidates.push_back(sample[local_index]);
  } else {
    const size_t sample_size = std::min(n, params.sample_factor * k);
    const size_t candidate_size =
        std::max(k, std::min(sample_size, params.candidate_factor * k));
    candidates = rng.SampleWithoutReplacement(n, candidate_size);
  }
  // invariant: candidate_size was clamped to >= k, both sampling paths
  // return exactly candidate_size indices, and ValidateCheckpoint
  // enforces the same bound on a resumed pool.
  PROCLUS_CHECK(candidates.size() >= k);
  auto candidate_coords_result =
      FetchWithRetry(source, candidates, params.retry, &stats,
                     params.cancel);
  PROCLUS_RETURN_IF_ERROR(candidate_coords_result.status());
  const Matrix& candidate_coords = *candidate_coords_result;
  stats.init_scans = stats.scans_issued;
  stats.init_seconds = phase_timer.ElapsedSeconds();

  // ----- Phase 2: Iterative (hill climbing with restarts) -----
  phase_timer.Reset();
  const uint64_t scans_before_climb = stats.scans_issued;
  ScanExecutor executor(pass_options);
  FusedScratch fused;
  MedoidScratch classic_scratch;
  Matrix classic_coords;

  double best_objective = std::numeric_limits<double>::infinity();
  std::vector<size_t> best_slots;
  std::vector<DimensionSet> best_dims;
  std::vector<int> best_labels;
  size_t iterations = 0;    // Committed totals of COMPLETED restarts;
  size_t improvements = 0;  // the in-progress climb's counts live in st.

  size_t first_restart = 0;
  ClimbState seeded;
  bool have_seed = false;
  if (resuming) {
    first_restart = resume_ck.restart;
    best_objective = resume_ck.best_objective;
    best_slots.assign(resume_ck.best_slots.begin(),
                      resume_ck.best_slots.end());
    best_dims = DimsFromLists(resume_ck.best_dims, d);
    best_labels.assign(resume_ck.best_labels.begin(),
                       resume_ck.best_labels.end());
    iterations = resume_ck.total_iterations;
    improvements = resume_ck.total_improvements;
    seeded.current.assign(resume_ck.climb_current.begin(),
                          resume_ck.climb_current.end());
    seeded.out.objective = resume_ck.climb_objective;
    seeded.out.slots.assign(resume_ck.climb_slots.begin(),
                            resume_ck.climb_slots.end());
    seeded.out.dims = DimsFromLists(resume_ck.climb_dims, d);
    seeded.out.labels.assign(resume_ck.climb_labels.begin(),
                             resume_ck.climb_labels.end());
    seeded.out.iterations = resume_ck.climb_iterations;
    seeded.out.improvements = resume_ck.climb_improvements;
    seeded.bad.assign(resume_ck.climb_bad.begin(),
                      resume_ck.climb_bad.end());
    seeded.since_improvement = resume_ck.since_improvement;
    have_seed = true;
    rng.RestoreState(resume_ck.rng);
  }

  size_t current_restart = first_restart;
  ClimbHook hook;
  if (!params.checkpoint.path.empty()) {
    hook = [&](const ClimbState& cs, bool force_save) -> Status {
      if (force_save) {
        if (!params.checkpoint.save_on_cancel) return Status::OK();
      } else if (cs.out.iterations % params.checkpoint.every_iterations !=
                 0) {
        return Status::OK();
      }
      ProclusCheckpoint ck;
      ck.fingerprint = fingerprint;
      ck.num_dims = d;
      ck.restart = current_restart;
      ck.rng = rng.SaveState();
      ck.candidates.assign(candidates.begin(), candidates.end());
      ck.climb_current.assign(cs.current.begin(), cs.current.end());
      ck.climb_objective = cs.out.objective;
      ck.climb_slots.assign(cs.out.slots.begin(), cs.out.slots.end());
      ck.climb_dims.reserve(cs.out.dims.size());
      for (const DimensionSet& ds : cs.out.dims)
        ck.climb_dims.push_back(ds.ToVector());
      ck.climb_labels.assign(cs.out.labels.begin(), cs.out.labels.end());
      ck.climb_iterations = cs.out.iterations;
      ck.climb_improvements = cs.out.improvements;
      ck.climb_bad.assign(cs.bad.begin(), cs.bad.end());
      ck.since_improvement = cs.since_improvement;
      ck.best_objective = best_objective;
      ck.best_slots.assign(best_slots.begin(), best_slots.end());
      ck.best_dims.reserve(best_dims.size());
      for (const DimensionSet& ds : best_dims)
        ck.best_dims.push_back(ds.ToVector());
      ck.best_labels.assign(best_labels.begin(), best_labels.end());
      ck.total_iterations = iterations;
      ck.total_improvements = improvements;
      return SaveCheckpointFile(ck, params.checkpoint.path);
    };
  }

  for (size_t restart = first_restart; restart < params.num_restarts;
       ++restart) {
    current_restart = restart;
    ClimbState st;
    // draws: invariant — the seeded restart skips the draw precisely
    // because the checkpointed RNG state already consumed it before the
    // snapshot; fresh restarts draw it here. Stream position matches in
    // both cases.
    if (have_seed && restart == first_restart) {
      st = std::move(seeded);
    } else {
      st.current = rng.SampleWithoutReplacement(candidates.size(), k);
    }
    Status climb =
        params.fuse_scans
            ? FusedClimb(source, params, candidate_coords, st, rng,
                         executor, fused, stats, hook, sketch)
            : ClassicClimb(source, params, candidate_coords, st, rng,
                           pass_options, classic_coords, classic_scratch,
                           hook, sketch);
    PROCLUS_RETURN_IF_ERROR(climb);
    iterations += st.out.iterations;
    improvements += st.out.improvements;
    if (st.out.objective < best_objective) {
      best_objective = st.out.objective;
      best_slots = std::move(st.out.slots);
      best_dims = std::move(st.out.dims);
      best_labels = std::move(st.out.labels);
    }
  }
  // invariant: num_restarts >= 1 (validated) and every restart runs at
  // least one hill-climbing iteration, which always records a best set.
  PROCLUS_CHECK(!best_slots.empty());
  stats.locality_cache_hits = fused.dist_cache.hits;
  stats.locality_cache_misses = fused.dist_cache.misses;
  stats.iterative_scans =
      stats.scans_issued - scans_before_climb - stats.bootstrap_scans;
  stats.iterative_seconds = phase_timer.ElapsedSeconds();

  ProjectedClustering result;
  result.iterations = iterations;
  result.improvements = improvements;
  result.medoids.reserve(k);
  for (size_t slot : best_slots) result.medoids.push_back(candidates[slot]);
  Matrix medoid_coords;
  SlotsToCoords(candidate_coords, best_slots, &medoid_coords);
  result.medoid_coords = medoid_coords;

  if (!params.refine) {
    result.dimensions = std::move(best_dims);
    result.labels = std::move(best_labels);
    result.objective = best_objective;
    stats.total_seconds = total_timer.ElapsedSeconds();
    result.stats = stats;
    return result;
  }

  // ----- Phase 3: Refinement -----
  // Recompute dimensions from the best clusters (not localities), then
  // reassign once more, detecting outliers by spheres of influence. The
  // fused engine folds the centroid accumulation into the reassignment
  // scan (3 scans total); the classic engine runs the two evaluation
  // scans separately (4 scans).
  phase_timer.Reset();
  const uint64_t scans_before_refine = stats.scans_issued;
  auto X = ClusterStatsPass(source, medoid_coords, best_labels,
                            pass_options);
  PROCLUS_RETURN_IF_ERROR(X.status());
  auto refined_dims = FindDimensions(*X, params.avg_dims);
  PROCLUS_RETURN_IF_ERROR(refined_dims.status());

  std::vector<std::vector<uint32_t>> dim_lists(k);
  for (size_t i = 0; i < k; ++i) dim_lists[i] = (*refined_dims)[i].ToVector();
  auto restricted_dist = [&](std::span<const double> a,
                             std::span<const double> b,
                             const std::vector<uint32_t>& dims) {
    return params.segmental_normalization
               ? ManhattanSegmentalDistance(a, b, dims)
               : RestrictedManhattanDistance(a, b, dims);
  };
  std::vector<double> spheres(k, std::numeric_limits<double>::infinity());
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < k; ++j) {
      if (j == i) continue;
      double dist = restricted_dist(medoid_coords.row(i),
                                    medoid_coords.row(j), dim_lists[i]);
      if (dist < spheres[i]) spheres[i] = dist;
    }
  }
  result.spheres = spheres;
  result.dimensions = std::move(refined_dims).value();

  if (params.fuse_scans) {
    RefineAssignConsumer refine;
    refine.SetSketch(sketch);
    PROCLUS_RETURN_IF_ERROR(refine.Bind(
        &medoid_coords, &result.dimensions, &spheres,
        params.segmental_normalization, params.detect_outliers,
        /*accumulate_centroids=*/true));
    PROCLUS_RETURN_IF_ERROR(executor.Run(source, {&refine}));
    DeviationConsumer deviation;
    PROCLUS_RETURN_IF_ERROR(
        deviation.Bind(&refine.labels(), &refine.centroids(),
                       &refine.cluster_sizes(), &result.dimensions));
    PROCLUS_RETURN_IF_ERROR(executor.Run(source, {&deviation}));
    result.objective = deviation.objective();
    result.labels = refine.TakeLabels();
  } else {
    auto labels = RefineAssignPass(source, medoid_coords, result.dimensions,
                                   spheres, params.segmental_normalization,
                                   params.detect_outliers, pass_options,
                                   sketch);
    PROCLUS_RETURN_IF_ERROR(labels.status());
    result.labels = std::move(labels).value();
    auto objective = EvaluateClustersPass(source, result.labels,
                                          result.dimensions, pass_options);
    PROCLUS_RETURN_IF_ERROR(objective.status());
    result.objective = *objective;
  }
  stats.refine_scans = stats.scans_issued - scans_before_refine;
  stats.refine_seconds = phase_timer.ElapsedSeconds();
  stats.total_seconds = total_timer.ElapsedSeconds();
  result.stats = stats;
  return result;
}

Result<ProjectedClustering> RunProclus(const Dataset& dataset,
                                       const ProclusParams& params) {
  MemorySource source(dataset);
  return RunProclusOnSource(source, params);
}

}  // namespace proclus
