#include "core/proclus.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/rng.h"
#include "common/timer.h"
#include "core/consumers.h"
#include "core/find_dimensions.h"
#include "core/greedy.h"
#include "core/passes.h"
#include "distance/metric.h"
#include "distance/segmental.h"

namespace proclus {

Status ProclusParams::Validate(size_t num_points, size_t dims) const {
  if (num_clusters == 0)
    return Status::InvalidArgument("num_clusters must be >= 1");
  if (num_points < num_clusters)
    return Status::InvalidArgument("fewer points than clusters");
  if (dims < 2) return Status::InvalidArgument("need at least 2 dimensions");
  if (avg_dims < 2.0)
    return Status::InvalidArgument("avg_dims must be >= 2");
  if (avg_dims > static_cast<double>(dims))
    return Status::InvalidArgument("avg_dims exceeds space dimensionality");
  size_t total = static_cast<size_t>(
      std::llround(avg_dims * static_cast<double>(num_clusters)));
  if (total > num_clusters * dims)
    return Status::InvalidArgument("k*l exceeds k*d dimension slots");
  if (sample_factor == 0)
    return Status::InvalidArgument("sample_factor must be >= 1");
  if (candidate_factor == 0)
    return Status::InvalidArgument("candidate_factor must be >= 1");
  if (min_deviation <= 0.0 || min_deviation > 1.0)
    return Status::InvalidArgument("min_deviation must be in (0, 1]");
  if (max_iterations == 0)
    return Status::InvalidArgument("max_iterations must be >= 1");
  if (num_restarts == 0)
    return Status::InvalidArgument("num_restarts must be >= 1");
  if (block_rows == 0)
    return Status::InvalidArgument("block_rows must be >= 1");
  return Status::OK();
}

namespace internal {

Matrix LocalityStats(const Dataset& dataset,
                     const std::vector<size_t>& medoids) {
  MemorySource source(dataset);
  auto coords = source.Fetch(medoids);
  PROCLUS_CHECK(coords.ok());
  auto result = LocalityStatsPass(source, *coords);
  PROCLUS_CHECK(result.ok());
  return std::move(result).value();
}

Matrix ClusterStats(const Dataset& dataset,
                    const std::vector<size_t>& medoids,
                    const std::vector<int>& labels) {
  MemorySource source(dataset);
  auto coords = source.Fetch(medoids);
  PROCLUS_CHECK(coords.ok());
  auto result = ClusterStatsPass(source, *coords, labels);
  PROCLUS_CHECK(result.ok());
  return std::move(result).value();
}

std::vector<size_t> FindBadMedoids(const std::vector<int>& labels, size_t k,
                                   double min_deviation) {
  std::vector<size_t> count(k, 0);
  size_t n = labels.size();
  for (int label : labels) {
    if (label == kOutlierLabel) continue;
    PROCLUS_CHECK(label >= 0 && static_cast<size_t>(label) < k);
    ++count[static_cast<size_t>(label)];
  }
  const double threshold =
      (static_cast<double>(n) / static_cast<double>(k)) * min_deviation;
  std::vector<size_t> bad;
  size_t smallest = 0;
  for (size_t i = 1; i < k; ++i)
    if (count[i] < count[smallest]) smallest = i;
  bad.push_back(smallest);
  for (size_t i = 0; i < k; ++i) {
    if (i == smallest) continue;
    if (static_cast<double>(count[i]) < threshold) bad.push_back(i);
  }
  return bad;
}

}  // namespace internal

namespace {

// Reused buffers of ReplaceBadMedoids: the free-slot list is rebuilt
// every iteration but never reallocated once it reaches capacity.
struct MedoidScratch {
  std::vector<uint8_t> used;       // One mark per candidate-pool slot.
  std::vector<size_t> free_slots;  // Unused slots, ascending before shuffle.
};

// Replaces the clusters listed in `bad` within `medoids` (positions into
// the candidate pool) by random unused candidates. The shuffle draws
// depend only on the free-slot COUNT (pool size minus k), never on the
// slot values, so two calls from identical Rng states advance the stream
// identically whatever the medoid sets are.
void ReplaceBadMedoids(size_t pool_size, const std::vector<size_t>& bad,
                       std::vector<size_t>* medoid_slots, Rng& rng,
                       MedoidScratch& scratch) {
  scratch.used.assign(pool_size, 0);
  for (size_t slot : *medoid_slots) scratch.used[slot] = 1;
  scratch.free_slots.clear();
  for (size_t slot = 0; slot < pool_size; ++slot)
    if (!scratch.used[slot]) scratch.free_slots.push_back(slot);
  rng.Shuffle(scratch.free_slots);
  size_t next = 0;
  for (size_t cluster : bad) {
    if (next >= scratch.free_slots.size()) break;  // Pool exhausted.
    (*medoid_slots)[cluster] = scratch.free_slots[next++];
  }
}

// Copies the k x d coordinate matrix of the medoids at `slots` within the
// candidate coordinate matrix into `out`, reallocating only when the
// shape changes.
void SlotsToCoords(const Matrix& candidate_coords,
                   const std::vector<size_t>& slots, Matrix* out) {
  if (out->rows() != slots.size() ||
      out->cols() != candidate_coords.cols() ||
      out->data().size() != slots.size() * candidate_coords.cols()) {
    *out = Matrix(slots.size(), candidate_coords.cols());
  }
  for (size_t i = 0; i < slots.size(); ++i) {
    auto src = candidate_coords.row(slots[i]);
    std::copy(src.begin(), src.end(), out->row(i).begin());
  }
}

// Best state found by one hill-climbing restart.
struct ClimbResult {
  double objective = std::numeric_limits<double>::infinity();
  std::vector<size_t> slots;
  std::vector<DimensionSet> dims;
  std::vector<int> labels;
  size_t iterations = 0;
  size_t improvements = 0;
};

// Long-lived consumers and buffers shared by every restart of the fused
// climb, so steady-state iterations allocate nothing.
struct FusedScratch {
  LocalityStatsConsumer locality;
  AssignConsumer assign;
  DeviationConsumer deviation;
  Matrix medoid_coords;  // Coordinates of the current medoid set.
  Matrix spec_coords;    // Union coordinates of the speculative sets.
  MedoidScratch medoids;
  std::vector<size_t> next_a;      // Next set if this iteration improves.
  std::vector<size_t> next_b;      // Next set if it does not.
  std::vector<size_t> union_slots;
};

constexpr size_t kNoVariant = static_cast<size_t>(-1);

// One hill-climbing restart on the fused scan engine: two physical scans
// per iteration.
//
//   Scan 1  assignment + per-cluster centroid accumulation
//   Scan 2  deviation evaluation + locality statistics of the NEXT
//           medoid set
//
// The classic loop needs a third and fourth scan because the locality
// statistics of the next iteration's medoids and the centroids of the
// current labels each took a dedicated pass. Fusing the locality scan
// works because the medoid replacement depends only on the assignment:
// before the evaluation scan runs, both possible next medoid sets — the
// one chosen if this iteration improves the objective and the one chosen
// if it does not — are already known, so the scan computes locality
// statistics for both (sharing per-point distances over the union of
// their medoids) and the loop keeps whichever branch materializes.
// The two replacement draws use identical Rng sequences (see
// ReplaceBadMedoids), so the random stream — and therefore every result —
// stays bit-identical to the classic engine.
Result<ClimbResult> FusedClimb(const PointSource& source,
                               const ProclusParams& params,
                               const Matrix& candidate_coords,
                               std::vector<size_t> current, Rng& rng,
                               const ScanExecutor& executor,
                               FusedScratch& s, RunStats& stats) {
  const size_t k = params.num_clusters;
  const size_t pool = candidate_coords.rows();
  ClimbResult out;
  std::vector<size_t> bad;  // Bad medoids of the best set so far.

  // Bootstrap: the locality statistics of the initial medoid set are the
  // only input the first iteration needs that no earlier scan produced.
  SlotsToCoords(candidate_coords, current, &s.medoid_coords);
  PROCLUS_RETURN_IF_ERROR(s.locality.Bind(&s.medoid_coords));
  PROCLUS_RETURN_IF_ERROR(executor.Run(source, {&s.locality}));
  ++stats.bootstrap_scans;
  Matrix X = s.locality.TakeStats();

  size_t since_improvement = 0;
  while (out.iterations < params.max_iterations &&
         since_improvement < params.max_no_improve) {
    ++out.iterations;
    auto dims = FindDimensions(X, params.avg_dims);
    PROCLUS_RETURN_IF_ERROR(dims.status());

    // Scan 1: assignment fused with centroid accumulation.
    PROCLUS_RETURN_IF_ERROR(s.assign.Bind(&s.medoid_coords, &*dims,
                                          params.segmental_normalization,
                                          /*accumulate_centroids=*/true));
    PROCLUS_RETURN_IF_ERROR(executor.Run(source, {&s.assign}));
    ++stats.iterative_scans;

    // Draw both speculative next medoid sets. Branch A materializes when
    // this iteration improves the objective (base = current set, bad
    // medoids from the fresh labels); branch B when it does not (base =
    // best set so far, its stored bad medoids). The main rng advances
    // through branch A's draw; branch B uses a copy that ends in the
    // identical state.
    std::vector<size_t> bad_a =
        internal::FindBadMedoids(s.assign.labels(), k, params.min_deviation);
    s.next_a = current;
    const bool have_b = !out.slots.empty();
    Rng rng_b = rng;
    ReplaceBadMedoids(pool, bad_a, &s.next_a, rng, s.medoids);
    const bool exhausted_a = s.next_a == current;
    bool exhausted_b = false;
    if (have_b) {
      s.next_b = out.slots;
      ReplaceBadMedoids(pool, bad, &s.next_b, rng_b, s.medoids);
      exhausted_b = s.next_b == out.slots;
    }

    // A branch's locality statistics are only worth computing when the
    // loop would actually continue with that branch.
    const bool last_iteration = out.iterations == params.max_iterations;
    const bool need_a = !last_iteration && !exhausted_a;
    const bool need_b = have_b && !last_iteration && !exhausted_b &&
                        since_improvement + 1 < params.max_no_improve;

    // Scan 2: deviation evaluation, fused with the speculative locality
    // statistics whenever a next iteration is possible.
    PROCLUS_RETURN_IF_ERROR(
        s.deviation.Bind(&s.assign.labels(), &s.assign.centroids(),
                         &s.assign.cluster_sizes(), &*dims));
    size_t variant_a = kNoVariant;
    size_t variant_b = kNoVariant;
    if (need_a || need_b) {
      s.union_slots.clear();
      std::vector<std::vector<size_t>> variant_rows;
      if (need_a) {
        s.union_slots.assign(s.next_a.begin(), s.next_a.end());
        std::vector<size_t> rows(k);
        std::iota(rows.begin(), rows.end(), size_t{0});
        variant_rows.push_back(std::move(rows));
        variant_a = 0;
      }
      if (need_b) {
        std::vector<size_t> rows(k);
        for (size_t i = 0; i < k; ++i) {
          const size_t slot = s.next_b[i];
          size_t pos = 0;
          while (pos < s.union_slots.size() && s.union_slots[pos] != slot)
            ++pos;
          if (pos == s.union_slots.size()) s.union_slots.push_back(slot);
          rows[i] = pos;
        }
        variant_b = variant_rows.size();
        variant_rows.push_back(std::move(rows));
      }
      SlotsToCoords(candidate_coords, s.union_slots, &s.spec_coords);
      PROCLUS_RETURN_IF_ERROR(
          s.locality.Bind(&s.spec_coords, std::move(variant_rows)));
      PROCLUS_RETURN_IF_ERROR(
          executor.Run(source, {&s.deviation, &s.locality}));
    } else {
      PROCLUS_RETURN_IF_ERROR(executor.Run(source, {&s.deviation}));
    }
    ++stats.iterative_scans;
    const double objective = s.deviation.objective();

    const bool improved = objective < out.objective;
    if (improved) {
      out.objective = objective;
      out.slots = current;
      out.dims = std::move(dims).value();
      out.labels = s.assign.labels();
      bad = std::move(bad_a);
      ++out.improvements;
      since_improvement = 0;
    } else {
      ++since_improvement;
    }
    // invariant: the first iteration always improves on the infinite
    // starting objective, so a non-improving iteration has a stored best
    // set and branch B was drawn.
    PROCLUS_CHECK(improved || have_b);
    const bool exhausted = improved ? exhausted_a : exhausted_b;
    if (exhausted) break;  // Candidate pool exhausted.
    current = improved ? s.next_a : s.next_b;
    if (last_iteration || since_improvement >= params.max_no_improve) break;
    // The loop continues: the locality statistics of `current` came out
    // of the evaluation scan above.
    const size_t variant = improved ? variant_a : variant_b;
    // invariant: need_a/need_b cover exactly the continue conditions
    // checked right above, so the surviving branch was computed.
    PROCLUS_CHECK(variant != kNoVariant);
    X = s.locality.TakeStats(variant);
    SlotsToCoords(candidate_coords, current, &s.medoid_coords);
  }
  return out;
}

// One hill-climbing restart on the classic pass-per-aggregate engine:
// four physical scans per iteration (locality, assignment, centroids,
// deviations). Kept as the measured before/after ablation for the fused
// engine; results are bit-identical.
Result<ClimbResult> ClassicClimb(const PointSource& source,
                                 const ProclusParams& params,
                                 const Matrix& candidate_coords,
                                 std::vector<size_t> current, Rng& rng,
                                 const PassOptions& pass_options,
                                 Matrix& medoid_coords,
                                 MedoidScratch& scratch) {
  const size_t k = params.num_clusters;
  ClimbResult out;
  std::vector<size_t> bad;

  size_t since_improvement = 0;
  while (out.iterations < params.max_iterations &&
         since_improvement < params.max_no_improve) {
    ++out.iterations;
    SlotsToCoords(candidate_coords, current, &medoid_coords);
    auto X = LocalityStatsPass(source, medoid_coords, pass_options);
    PROCLUS_RETURN_IF_ERROR(X.status());
    auto dims = FindDimensions(*X, params.avg_dims);
    PROCLUS_RETURN_IF_ERROR(dims.status());
    auto labels =
        AssignPointsPass(source, medoid_coords, *dims,
                         params.segmental_normalization, pass_options);
    PROCLUS_RETURN_IF_ERROR(labels.status());
    auto objective =
        EvaluateClustersPass(source, *labels, *dims, pass_options);
    PROCLUS_RETURN_IF_ERROR(objective.status());

    if (*objective < out.objective) {
      out.objective = *objective;
      out.slots = current;
      out.dims = std::move(dims).value();
      out.labels = std::move(labels).value();
      bad = internal::FindBadMedoids(out.labels, k, params.min_deviation);
      ++out.improvements;
      since_improvement = 0;
    } else {
      ++since_improvement;
    }
    current = out.slots;
    ReplaceBadMedoids(candidate_coords.rows(), bad, &current, rng, scratch);
    if (current == out.slots) break;  // Candidate pool exhausted.
  }
  return out;
}

}  // namespace

Result<ProjectedClustering> RunProclusOnSource(const PointSource& source,
                                               const ProclusParams& params) {
  PROCLUS_RETURN_IF_ERROR(params.Validate(source.size(), source.dims()));
  Rng rng(params.seed);
  const size_t k = params.num_clusters;
  const size_t n = source.size();
  RunStats stats;
  PassOptions pass_options{params.num_threads, params.block_rows, &stats};
  Timer total_timer;
  Timer phase_timer;

  // ----- Phase 1: Initialization -----
  // Sample A*k points, then reduce to B*k medoid candidates by greedy
  // farthest-first (or take a plain random candidate set in the
  // ablation). Only these few points are ever fetched by position.
  const size_t sample_size = std::min(n, params.sample_factor * k);
  const size_t candidate_size =
      std::max(k, std::min(sample_size, params.candidate_factor * k));
  std::vector<size_t> candidates;  // Global point indices.
  if (params.two_step_init) {
    std::vector<size_t> sample =
        rng.SampleWithoutReplacement(n, sample_size);
    auto sample_coords = source.Fetch(sample);
    PROCLUS_RETURN_IF_ERROR(sample_coords.status());
    Dataset sample_dataset(std::move(sample_coords).value());
    std::vector<size_t> local(sample.size());
    std::iota(local.begin(), local.end(), size_t{0});
    std::vector<size_t> picked = GreedyPick(
        sample_dataset, local, candidate_size, params.init_metric, rng);
    candidates.reserve(picked.size());
    for (size_t local_index : picked)
      candidates.push_back(sample[local_index]);
  } else {
    candidates = rng.SampleWithoutReplacement(n, candidate_size);
  }
  // invariant: candidate_size was clamped to >= k above, and both sampling
  // paths return exactly candidate_size indices.
  PROCLUS_CHECK(candidates.size() >= k);
  auto candidate_coords_result = source.Fetch(candidates);
  PROCLUS_RETURN_IF_ERROR(candidate_coords_result.status());
  const Matrix& candidate_coords = *candidate_coords_result;
  stats.init_scans = stats.scans_issued;
  stats.init_seconds = phase_timer.ElapsedSeconds();

  // ----- Phase 2: Iterative (hill climbing with restarts) -----
  phase_timer.Reset();
  const uint64_t scans_before_climb = stats.scans_issued;
  ScanExecutor executor(pass_options);
  FusedScratch fused;
  MedoidScratch classic_scratch;
  Matrix classic_coords;

  double best_objective = std::numeric_limits<double>::infinity();
  std::vector<size_t> best_slots;
  std::vector<DimensionSet> best_dims;
  std::vector<int> best_labels;
  size_t iterations = 0;
  size_t improvements = 0;
  for (size_t restart = 0; restart < params.num_restarts; ++restart) {
    std::vector<size_t> start =
        rng.SampleWithoutReplacement(candidates.size(), k);
    auto climb =
        params.fuse_scans
            ? FusedClimb(source, params, candidate_coords, std::move(start),
                         rng, executor, fused, stats)
            : ClassicClimb(source, params, candidate_coords,
                           std::move(start), rng, pass_options,
                           classic_coords, classic_scratch);
    PROCLUS_RETURN_IF_ERROR(climb.status());
    iterations += climb->iterations;
    improvements += climb->improvements;
    if (climb->objective < best_objective) {
      best_objective = climb->objective;
      best_slots = std::move(climb->slots);
      best_dims = std::move(climb->dims);
      best_labels = std::move(climb->labels);
    }
  }
  // invariant: num_restarts >= 1 (validated) and every restart runs at
  // least one hill-climbing iteration, which always records a best set.
  PROCLUS_CHECK(!best_slots.empty());
  stats.iterative_scans =
      stats.scans_issued - scans_before_climb - stats.bootstrap_scans;
  stats.iterative_seconds = phase_timer.ElapsedSeconds();

  ProjectedClustering result;
  result.iterations = iterations;
  result.improvements = improvements;
  result.medoids.reserve(k);
  for (size_t slot : best_slots) result.medoids.push_back(candidates[slot]);
  Matrix medoid_coords;
  SlotsToCoords(candidate_coords, best_slots, &medoid_coords);
  result.medoid_coords = medoid_coords;

  if (!params.refine) {
    result.dimensions = std::move(best_dims);
    result.labels = std::move(best_labels);
    result.objective = best_objective;
    stats.total_seconds = total_timer.ElapsedSeconds();
    result.stats = stats;
    return result;
  }

  // ----- Phase 3: Refinement -----
  // Recompute dimensions from the best clusters (not localities), then
  // reassign once more, detecting outliers by spheres of influence. The
  // fused engine folds the centroid accumulation into the reassignment
  // scan (3 scans total); the classic engine runs the two evaluation
  // scans separately (4 scans).
  phase_timer.Reset();
  const uint64_t scans_before_refine = stats.scans_issued;
  auto X = ClusterStatsPass(source, medoid_coords, best_labels,
                            pass_options);
  PROCLUS_RETURN_IF_ERROR(X.status());
  auto refined_dims = FindDimensions(*X, params.avg_dims);
  PROCLUS_RETURN_IF_ERROR(refined_dims.status());

  std::vector<std::vector<uint32_t>> dim_lists(k);
  for (size_t i = 0; i < k; ++i) dim_lists[i] = (*refined_dims)[i].ToVector();
  auto restricted_dist = [&](std::span<const double> a,
                             std::span<const double> b,
                             const std::vector<uint32_t>& dims) {
    return params.segmental_normalization
               ? ManhattanSegmentalDistance(a, b, dims)
               : RestrictedManhattanDistance(a, b, dims);
  };
  std::vector<double> spheres(k, std::numeric_limits<double>::infinity());
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < k; ++j) {
      if (j == i) continue;
      double dist = restricted_dist(medoid_coords.row(i),
                                    medoid_coords.row(j), dim_lists[i]);
      if (dist < spheres[i]) spheres[i] = dist;
    }
  }
  result.spheres = spheres;
  result.dimensions = std::move(refined_dims).value();

  if (params.fuse_scans) {
    RefineAssignConsumer refine;
    PROCLUS_RETURN_IF_ERROR(refine.Bind(
        &medoid_coords, &result.dimensions, &spheres,
        params.segmental_normalization, params.detect_outliers,
        /*accumulate_centroids=*/true));
    PROCLUS_RETURN_IF_ERROR(executor.Run(source, {&refine}));
    DeviationConsumer deviation;
    PROCLUS_RETURN_IF_ERROR(
        deviation.Bind(&refine.labels(), &refine.centroids(),
                       &refine.cluster_sizes(), &result.dimensions));
    PROCLUS_RETURN_IF_ERROR(executor.Run(source, {&deviation}));
    result.objective = deviation.objective();
    result.labels = refine.TakeLabels();
  } else {
    auto labels = RefineAssignPass(source, medoid_coords, result.dimensions,
                                   spheres, params.segmental_normalization,
                                   params.detect_outliers, pass_options);
    PROCLUS_RETURN_IF_ERROR(labels.status());
    result.labels = std::move(labels).value();
    auto objective = EvaluateClustersPass(source, result.labels,
                                          result.dimensions, pass_options);
    PROCLUS_RETURN_IF_ERROR(objective.status());
    result.objective = *objective;
  }
  stats.refine_scans = stats.scans_issued - scans_before_refine;
  stats.refine_seconds = phase_timer.ElapsedSeconds();
  stats.total_seconds = total_timer.ElapsedSeconds();
  result.stats = stats;
  return result;
}

Result<ProjectedClustering> RunProclus(const Dataset& dataset,
                                       const ProclusParams& params) {
  MemorySource source(dataset);
  return RunProclusOnSource(source, params);
}

}  // namespace proclus
