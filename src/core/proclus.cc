#include "core/proclus.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <unordered_set>

#include "common/logging.h"
#include "common/rng.h"
#include "core/find_dimensions.h"
#include "core/greedy.h"
#include "core/passes.h"
#include "distance/metric.h"
#include "distance/segmental.h"

namespace proclus {

Status ProclusParams::Validate(size_t num_points, size_t dims) const {
  if (num_clusters == 0)
    return Status::InvalidArgument("num_clusters must be >= 1");
  if (num_points < num_clusters)
    return Status::InvalidArgument("fewer points than clusters");
  if (dims < 2) return Status::InvalidArgument("need at least 2 dimensions");
  if (avg_dims < 2.0)
    return Status::InvalidArgument("avg_dims must be >= 2");
  if (avg_dims > static_cast<double>(dims))
    return Status::InvalidArgument("avg_dims exceeds space dimensionality");
  size_t total = static_cast<size_t>(
      std::llround(avg_dims * static_cast<double>(num_clusters)));
  if (total > num_clusters * dims)
    return Status::InvalidArgument("k*l exceeds k*d dimension slots");
  if (sample_factor == 0)
    return Status::InvalidArgument("sample_factor must be >= 1");
  if (candidate_factor == 0)
    return Status::InvalidArgument("candidate_factor must be >= 1");
  if (min_deviation <= 0.0 || min_deviation > 1.0)
    return Status::InvalidArgument("min_deviation must be in (0, 1]");
  if (max_iterations == 0)
    return Status::InvalidArgument("max_iterations must be >= 1");
  if (num_restarts == 0)
    return Status::InvalidArgument("num_restarts must be >= 1");
  if (block_rows == 0)
    return Status::InvalidArgument("block_rows must be >= 1");
  return Status::OK();
}

namespace internal {

Matrix LocalityStats(const Dataset& dataset,
                     const std::vector<size_t>& medoids) {
  MemorySource source(dataset);
  auto coords = source.Fetch(medoids);
  PROCLUS_CHECK(coords.ok());
  auto result = LocalityStatsPass(source, *coords);
  PROCLUS_CHECK(result.ok());
  return std::move(result).value();
}

Matrix ClusterStats(const Dataset& dataset,
                    const std::vector<size_t>& medoids,
                    const std::vector<int>& labels) {
  MemorySource source(dataset);
  auto coords = source.Fetch(medoids);
  PROCLUS_CHECK(coords.ok());
  auto result = ClusterStatsPass(source, *coords, labels);
  PROCLUS_CHECK(result.ok());
  return std::move(result).value();
}

std::vector<size_t> FindBadMedoids(const std::vector<int>& labels, size_t k,
                                   double min_deviation) {
  std::vector<size_t> count(k, 0);
  size_t n = labels.size();
  for (int label : labels) {
    if (label == kOutlierLabel) continue;
    PROCLUS_CHECK(label >= 0 && static_cast<size_t>(label) < k);
    ++count[static_cast<size_t>(label)];
  }
  const double threshold =
      (static_cast<double>(n) / static_cast<double>(k)) * min_deviation;
  std::vector<size_t> bad;
  size_t smallest = 0;
  for (size_t i = 1; i < k; ++i)
    if (count[i] < count[smallest]) smallest = i;
  bad.push_back(smallest);
  for (size_t i = 0; i < k; ++i) {
    if (i == smallest) continue;
    if (static_cast<double>(count[i]) < threshold) bad.push_back(i);
  }
  return bad;
}

}  // namespace internal

namespace {

// Replaces the clusters listed in `bad` within `medoids` (positions into
// the candidate pool) by random unused candidates.
void ReplaceBadMedoids(size_t pool_size, const std::vector<size_t>& bad,
                       std::vector<size_t>* medoid_slots, Rng& rng) {
  std::unordered_set<size_t> used(medoid_slots->begin(),
                                  medoid_slots->end());
  std::vector<size_t> free_slots;
  free_slots.reserve(pool_size);
  for (size_t slot = 0; slot < pool_size; ++slot)
    if (!used.count(slot)) free_slots.push_back(slot);
  rng.Shuffle(free_slots);
  size_t next = 0;
  for (size_t cluster : bad) {
    if (next >= free_slots.size()) break;  // Pool exhausted.
    (*medoid_slots)[cluster] = free_slots[next++];
  }
}

// Builds the k x d coordinate matrix of the medoids at `slots` within
// the candidate coordinate matrix.
Matrix SlotsToCoords(const Matrix& candidate_coords,
                     const std::vector<size_t>& slots) {
  Matrix out(slots.size(), candidate_coords.cols());
  for (size_t i = 0; i < slots.size(); ++i) {
    auto src = candidate_coords.row(slots[i]);
    std::copy(src.begin(), src.end(), out.row(i).begin());
  }
  return out;
}

}  // namespace

Result<ProjectedClustering> RunProclusOnSource(const PointSource& source,
                                               const ProclusParams& params) {
  PROCLUS_RETURN_IF_ERROR(params.Validate(source.size(), source.dims()));
  Rng rng(params.seed);
  const size_t k = params.num_clusters;
  const size_t n = source.size();
  PassOptions pass_options{params.num_threads, params.block_rows};

  // ----- Phase 1: Initialization -----
  // Sample A*k points, then reduce to B*k medoid candidates by greedy
  // farthest-first (or take a plain random candidate set in the
  // ablation). Only these few points are ever fetched by position.
  const size_t sample_size = std::min(n, params.sample_factor * k);
  const size_t candidate_size =
      std::max(k, std::min(sample_size, params.candidate_factor * k));
  std::vector<size_t> candidates;  // Global point indices.
  if (params.two_step_init) {
    std::vector<size_t> sample =
        rng.SampleWithoutReplacement(n, sample_size);
    auto sample_coords = source.Fetch(sample);
    PROCLUS_RETURN_IF_ERROR(sample_coords.status());
    Dataset sample_dataset(std::move(sample_coords).value());
    std::vector<size_t> local(sample.size());
    std::iota(local.begin(), local.end(), size_t{0});
    std::vector<size_t> picked = GreedyPick(
        sample_dataset, local, candidate_size, params.init_metric, rng);
    candidates.reserve(picked.size());
    for (size_t local_index : picked)
      candidates.push_back(sample[local_index]);
  } else {
    candidates = rng.SampleWithoutReplacement(n, candidate_size);
  }
  // invariant: candidate_size was clamped to >= k above, and both sampling
  // paths return exactly candidate_size indices.
  PROCLUS_CHECK(candidates.size() >= k);
  auto candidate_coords_result = source.Fetch(candidates);
  PROCLUS_RETURN_IF_ERROR(candidate_coords_result.status());
  const Matrix& candidate_coords = *candidate_coords_result;

  // ----- Phase 2: Iterative (hill climbing with restarts) -----
  double best_objective = std::numeric_limits<double>::infinity();
  std::vector<size_t> best_slots;
  std::vector<DimensionSet> best_dims;
  std::vector<int> best_labels;

  size_t iterations = 0;
  size_t improvements = 0;
  for (size_t restart = 0; restart < params.num_restarts; ++restart) {
    std::vector<size_t> current =
        rng.SampleWithoutReplacement(candidates.size(), k);
    double local_best = std::numeric_limits<double>::infinity();
    std::vector<size_t> local_slots;
    std::vector<DimensionSet> local_dims;
    std::vector<int> local_labels;
    std::vector<size_t> bad;

    size_t local_iterations = 0;
    size_t since_improvement = 0;
    while (local_iterations < params.max_iterations &&
           since_improvement < params.max_no_improve) {
      ++local_iterations;
      Matrix medoid_coords = SlotsToCoords(candidate_coords, current);
      auto X = LocalityStatsPass(source, medoid_coords, pass_options);
      PROCLUS_RETURN_IF_ERROR(X.status());
      auto dims = FindDimensions(*X, params.avg_dims);
      PROCLUS_RETURN_IF_ERROR(dims.status());
      auto labels =
          AssignPointsPass(source, medoid_coords, *dims,
                           params.segmental_normalization, pass_options);
      PROCLUS_RETURN_IF_ERROR(labels.status());
      auto objective =
          EvaluateClustersPass(source, *labels, *dims, pass_options);
      PROCLUS_RETURN_IF_ERROR(objective.status());

      if (*objective < local_best) {
        local_best = *objective;
        local_slots = current;
        local_dims = std::move(dims).value();
        local_labels = std::move(labels).value();
        bad = internal::FindBadMedoids(local_labels, k,
                                       params.min_deviation);
        ++improvements;
        since_improvement = 0;
      } else {
        ++since_improvement;
      }
      current = local_slots;
      ReplaceBadMedoids(candidates.size(), bad, &current, rng);
      if (current == local_slots) break;  // Candidate pool exhausted.
    }
    iterations += local_iterations;
    if (local_best < best_objective) {
      best_objective = local_best;
      best_slots = std::move(local_slots);
      best_dims = std::move(local_dims);
      best_labels = std::move(local_labels);
    }
  }
  // invariant: num_restarts >= 1 (validated) and every restart runs at
  // least one hill-climbing iteration, which always records a best set.
  PROCLUS_CHECK(!best_slots.empty());

  ProjectedClustering result;
  result.iterations = iterations;
  result.improvements = improvements;
  result.medoids.reserve(k);
  for (size_t slot : best_slots) result.medoids.push_back(candidates[slot]);
  Matrix medoid_coords = SlotsToCoords(candidate_coords, best_slots);
  result.medoid_coords = medoid_coords;

  if (!params.refine) {
    result.dimensions = std::move(best_dims);
    result.labels = std::move(best_labels);
    result.objective = best_objective;
    return result;
  }

  // ----- Phase 3: Refinement -----
  // Recompute dimensions from the best clusters (not localities), then
  // reassign once more, detecting outliers by spheres of influence.
  auto X = ClusterStatsPass(source, medoid_coords, best_labels,
                            pass_options);
  PROCLUS_RETURN_IF_ERROR(X.status());
  auto refined_dims = FindDimensions(*X, params.avg_dims);
  PROCLUS_RETURN_IF_ERROR(refined_dims.status());

  std::vector<std::vector<uint32_t>> dim_lists(k);
  for (size_t i = 0; i < k; ++i) dim_lists[i] = (*refined_dims)[i].ToVector();
  auto restricted_dist = [&](std::span<const double> a,
                             std::span<const double> b,
                             const std::vector<uint32_t>& dims) {
    return params.segmental_normalization
               ? ManhattanSegmentalDistance(a, b, dims)
               : RestrictedManhattanDistance(a, b, dims);
  };
  std::vector<double> spheres(k, std::numeric_limits<double>::infinity());
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < k; ++j) {
      if (j == i) continue;
      double dist = restricted_dist(medoid_coords.row(i),
                                    medoid_coords.row(j), dim_lists[i]);
      if (dist < spheres[i]) spheres[i] = dist;
    }
  }

  auto labels = RefineAssignPass(source, medoid_coords, *refined_dims,
                                 spheres, params.segmental_normalization,
                                 params.detect_outliers, pass_options);
  PROCLUS_RETURN_IF_ERROR(labels.status());

  result.spheres = spheres;
  result.dimensions = std::move(refined_dims).value();
  result.labels = std::move(labels).value();
  auto objective = EvaluateClustersPass(source, result.labels,
                                        result.dimensions, pass_options);
  PROCLUS_RETURN_IF_ERROR(objective.status());
  result.objective = *objective;
  return result;
}

Result<ProjectedClustering> RunProclus(const Dataset& dataset,
                                       const ProclusParams& params) {
  MemorySource source(dataset);
  return RunProclusOnSource(source, params);
}

}  // namespace proclus
