// AssignPoints / EvaluateClusters (Figures 5 and 6 of the paper).

#ifndef PROCLUS_CORE_ASSIGN_H_
#define PROCLUS_CORE_ASSIGN_H_

#include <vector>

#include "common/dimension_set.h"
#include "data/dataset.h"

namespace proclus {

/// Assigns every point to the medoid with the smallest Manhattan segmental
/// distance relative to that medoid's dimension set (Figure 5). One pass
/// over the data; ties go to the lower cluster index. Returns per-point
/// cluster ids in [0, k).
///
/// When `segmental_normalization` is false the plain (unnormalized)
/// restricted Manhattan distance is used instead — the ablation of the
/// paper's |D|-normalization.
std::vector<int> AssignPoints(const Dataset& dataset,
                              const std::vector<size_t>& medoids,
                              const std::vector<DimensionSet>& dims,
                              bool segmental_normalization = true);

/// Evaluates a clustering (Figure 6): for each non-empty cluster, the
/// average over its dimensions of the average per-dimension distance of
/// its points to its centroid; weighted by cluster size and divided by the
/// number of clustered points. Lower is better. `labels` may contain
/// kOutlierLabel entries, which are ignored. Returns 0 when no point is
/// clustered.
double EvaluateClusters(const Dataset& dataset, const std::vector<int>& labels,
                        const std::vector<DimensionSet>& dims);

}  // namespace proclus

#endif  // PROCLUS_CORE_ASSIGN_H_
