#include "core/find_dimensions.h"

#include <algorithm>
#include <cmath>
#include <tuple>

namespace proclus {

Matrix ComputeZScores(const Matrix& X) {
  const size_t k = X.rows();
  const size_t d = X.cols();
  PROCLUS_CHECK(d >= 2);
  Matrix Z(k, d);
  for (size_t i = 0; i < k; ++i) {
    double mean = 0.0;
    for (size_t j = 0; j < d; ++j) mean += X(i, j);
    mean /= static_cast<double>(d);
    double var = 0.0;
    for (size_t j = 0; j < d; ++j) {
      double diff = X(i, j) - mean;
      var += diff * diff;
    }
    double sigma = std::sqrt(var / static_cast<double>(d - 1));
    if (sigma > 0.0) {
      for (size_t j = 0; j < d; ++j) Z(i, j) = (X(i, j) - mean) / sigma;
    }
    // sigma == 0: leave the row at zero; every dimension is equivalent.
  }
  return Z;
}

Result<std::vector<DimensionSet>> AllocateDimensions(const Matrix& Z,
                                                     size_t total,
                                                     size_t min_per_row) {
  const size_t k = Z.rows();
  const size_t d = Z.cols();
  if (k == 0) return Status::InvalidArgument("Z has no rows");
  if (total < min_per_row * k)
    return Status::InvalidArgument(
        "total dimensions below the per-medoid minimum");
  if (total > k * d)
    return Status::InvalidArgument(
        "total dimensions exceeds k * d available slots");

  struct Entry {
    double z;
    uint32_t row;
    uint32_t col;
    bool operator<(const Entry& other) const {
      return std::tie(z, row, col) < std::tie(other.z, other.row, other.col);
    }
  };

  std::vector<std::vector<DimensionSet>::value_type> result(
      k, DimensionSet(d));

  // Preallocate the min_per_row smallest entries of each row.
  std::vector<Entry> remaining;
  remaining.reserve(k * d);
  size_t picked = 0;
  std::vector<Entry> row_entries(d);
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < d; ++j)
      row_entries[j] = {Z(i, j), static_cast<uint32_t>(i),
                        static_cast<uint32_t>(j)};
    std::sort(row_entries.begin(), row_entries.end());
    for (size_t j = 0; j < d; ++j) {
      if (j < min_per_row) {
        result[i].Add(row_entries[j].col);
        ++picked;
      } else {
        remaining.push_back(row_entries[j]);
      }
    }
  }

  // Greedily take the globally smallest remaining values.
  std::sort(remaining.begin(), remaining.end());
  for (const Entry& e : remaining) {
    if (picked == total) break;
    result[e.row].Add(e.col);
    ++picked;
  }
  // invariant: the two greedy passes allocate exactly `total` slots; the
  // slot arithmetic was validated against k*d above.
  PROCLUS_CHECK(picked == total);
  return result;
}

Result<std::vector<DimensionSet>> FindDimensions(const Matrix& X,
                                                 double avg_dims) {
  const size_t k = X.rows();
  if (k == 0) return Status::InvalidArgument("X has no rows");
  size_t total = static_cast<size_t>(
      std::llround(avg_dims * static_cast<double>(k)));
  Matrix Z = ComputeZScores(X);
  return AllocateDimensions(Z, total, /*min_per_row=*/2);
}

}  // namespace proclus
