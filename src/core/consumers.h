// ScanConsumer implementations of the PROCLUS data passes.
//
// Each class transcribes one of the aggregate/per-point computations of
// the original pass functions (core/passes.h) onto the scan-executor
// contract (data/engine.h): per-block partials, block-ordered merge,
// bit-identical results for any thread count. Because they are consumers,
// several of them can share one physical scan — the fused PROCLUS loop
// runs assignment + centroid accumulation in one scan and deviation
// evaluation + speculative locality statistics in another.
//
// Consumers are long-lived: construct once, Bind(...) the inputs of the
// next scan, hand to ScanExecutor::Run. Their block buffers persist
// across scans, so rebinding every iteration costs no allocations once
// the buffers reach steady-state capacity.
//
// Accumulation-order guarantee: every consumer adds values in exactly the
// per-point, per-cluster order of the original pass bodies and merges
// partials in ascending block order, so its outputs are bit-identical to
// the pre-refactor passes for identical inputs.
//
// Rollback (ScanConsumer::Reset): all consumers here override Reset with
// an explicit no-op. Each ConsumeBlock fully overwrites its block's
// partial (sums/labels are assigned, never accumulated across scans) and
// a successful scan delivers every block exactly once, so re-running
// Prepare + a full scan after a failed attempt leaves no trace of the
// discarded blocks. Any future consumer that accumulates into state NOT
// keyed by block or row must make its Reset discard that state; the
// analyzer's consumer-lifecycle rule holds every subclass to an explicit
// override either way.

#ifndef PROCLUS_CORE_CONSUMERS_H_
#define PROCLUS_CORE_CONSUMERS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/dimension_set.h"
#include "common/matrix.h"
#include "data/engine.h"
#include "distance/batch.h"
#include "sketch/plan.h"

namespace proclus {

// Per-block accumulator of k x d sums plus k counts, shared by the
// aggregate consumers.
struct BlockSums {
  std::vector<double> sums;   // k x d
  std::vector<size_t> count;  // k
};

/// Cross-scan cache of per-point distance columns, keyed by candidate
/// slot id. Hill-climbing replaces only the bad medoids between
/// iterations, so most of a speculative set's medoids already had their
/// full-space segmental distances to every point computed by an earlier
/// locality scan; a cached column makes those medoids free in the next
/// scan. Values are reused verbatim (never recomputed differently), so a
/// cached run is bit-identical to an uncached one. Owned by the caller
/// (the fused climb's scratch) and valid only while the candidate
/// coordinates and the source it was filled from stay fixed.
///
/// Scatter-fill/commit protocol (lock-free by ownership partitioning;
/// DESIGN.md §10): the structure itself — entries, clock, hits, misses,
/// and each entry's slot/valid/last_used — is touched ONLY by the thread
/// driving the scan, inside Prepare (slot lookup, eviction, column
/// (re)allocation) and Merge (validity commit), which the executor runs
/// strictly before and after the parallel region. During the region,
/// workers write only the *contents* of fresh entries' dist columns, each
/// block scattering into its own disjoint row range [first_row,
/// first_row + rows); hit columns are read-only. Validity commits on
/// Merge and nowhere else, so a scan attempt that fails or is abandoned
/// leaves its claimed entries invalid and the retry refills them —
/// fault-retry and resume keep bit-identical results.
struct MedoidDistanceCache {
  struct Entry {
    size_t slot = 0;
    /// Committed by a successful scan's Merge; entries claimed by a scan
    /// that failed or was abandoned simply stay invalid and are refilled.
    bool valid = false;
    uint64_t last_used = 0;
    std::vector<double> dist;  ///< One distance per source row.
    /// Sketch-screened fills (DESIGN.md §14): exact[r] == 1 marks dist[r]
    /// as the exact segmental distance; 0 marks it as a guaranteed lower
    /// bound (the screen pruned the exact evaluation because the bound
    /// already exceeded every locality threshold of the filling scan). An
    /// EMPTY vector means the whole column is exact (unscreened fill) —
    /// the pre-sketch layout, still produced when screening is off.
    /// Written only at fill time under the same ownership protocol as
    /// `dist`; reusing scans never write it (write-free reuse).
    std::vector<uint8_t> exact;
  };
  std::vector<Entry> entries;  ///< Small; linear lookup by slot.
  uint64_t clock = 0;          ///< Bumped per scan; drives LRU eviction.
  uint64_t hits = 0;
  uint64_t misses = 0;
};

/// Locality statistics (iterative phase): X(i, j) = average |p_j - m_ij|
/// over the points within delta_i of medoid i, where delta_i is the
/// full-space segmental distance from medoid i to its nearest other
/// medoid.
///
/// Supports VARIANTS: several candidate medoid sets evaluated in the same
/// scan, sharing the per-point distance computations to the union of
/// their medoids. Each variant's statistics are accumulated and merged
/// independently, so they are bit-identical to running a separate scan
/// per variant. This is what lets the fused hill-climb compute the
/// locality statistics of both speculative next medoid sets inside the
/// evaluation scan.
class LocalityStatsConsumer final : public ScanConsumer {
 public:
  /// Binds the union medoid coordinate matrix (u x d) and one row-index
  /// list per variant; variant v's medoid i is `medoids->row(rows[v][i])`.
  /// `medoids` must outlive the scan.
  Status Bind(const Matrix* medoids,
              std::vector<std::vector<size_t>> variant_rows);

  /// Single-variant convenience: the variant is all rows of `medoids`.
  Status Bind(const Matrix* medoids);

  /// Cached binding: `slots` names the candidate slot behind each medoid
  /// row (distinct, same length as `medoids` rows) and `cache` persists
  /// across scans. Distance columns for slots the cache already holds are
  /// reused; freshly computed columns are committed back on Merge.
  /// `slots` and `cache` must outlive the scan.
  Status Bind(const Matrix* medoids,
              std::vector<std::vector<size_t>> variant_rows,
              std::span<const size_t> slots, MedoidDistanceCache* cache);

  /// Enables sketch screening of the per-medoid distance columns (null
  /// disables it — the ablation default). The plan must outlive the scan;
  /// screening activates only when plan->ScreenProfitable(dims). The
  /// statistics are bit-identical either way: a column value is only ever
  /// compared against the locality thresholds, and a stored lower bound
  /// replaces the exact distance only when both sides of that comparison
  /// provably agree.
  void SetSketch(const SketchPlan* sketch) { sketch_ = sketch; }

  Status Prepare(const ScanGeometry& geometry) override;
  void ConsumeBlock(size_t block_index, size_t first_row,
                    std::span<const double> data, size_t rows) override;
  Status Merge() override;
  // Explicit no-op: Prepare() overwrites every partial Merge() reads
  // (see the rollback note at the top of this header).
  void Reset() override {}
  uint64_t distance_evals() const override { return distance_evals_; }
  KernelStats kernel_stats() const override;

  size_t num_variants() const { return variant_rows_.size(); }
  /// Statistics matrix (k_v x d) of variant `v`, valid after Merge.
  const Matrix& stats(size_t v = 0) const { return stats_[v]; }
  Matrix TakeStats(size_t v = 0) { return std::move(stats_[v]); }

 private:
  const Matrix* medoids_ = nullptr;
  std::vector<std::vector<size_t>> variant_rows_;
  std::vector<std::vector<double>> deltas_;         // [variant][cluster]
  std::vector<std::vector<BlockSums>> partials_;    // [variant][block]
  std::vector<KernelScratch> scratch_;              // [block]
  std::vector<std::vector<const double*>> cols_;    // [block][union row]
  std::vector<Matrix> stats_;                       // [variant]
  // Cached-binding state (empty/null for uncached binds).
  MedoidDistanceCache* cache_ = nullptr;
  std::vector<size_t> slots_;        // candidate slot per medoid row
  std::vector<double*> col_base_;    // full-length column per medoid row
  std::vector<size_t> fresh_rows_;   // medoid rows needing fresh columns
  std::vector<size_t> fresh_entries_;  // cache entry index per fresh row
  Matrix fresh_medoids_;             // fresh rows' coordinates, packed
  // Sketch-screening state (null/empty when screening is off this scan).
  const SketchPlan* sketch_ = nullptr;
  bool screening_ = false;           // resolved per scan in Prepare
  std::vector<double> union_sketches_;   // u x width, row-major
  std::vector<double> union_masses_;     // [u] L1 mass per medoid
  std::vector<double> thresholds_;       // [u] max locality delta per row
  std::vector<double> fresh_sketches_;   // fresh rows' sketches, packed
  std::vector<double> fresh_masses_;
  std::vector<double> fresh_thresholds_;
  std::vector<uint8_t*> exact_base_;  // full-length exact flags (or null)
  std::vector<std::vector<const uint8_t*>> exact_cols_;  // [block][row]
  size_t dims_ = 0;
  size_t rows_ = 0;  // source rows (= cached column length) this scan
  uint64_t distance_evals_ = 0;
};

/// Assignment (Figure 5): each point goes to the medoid minimizing the
/// Manhattan segmental distance on that medoid's dimensions, ties to the
/// lower index. Optionally fuses the per-cluster centroid accumulation
/// (the first of EvaluateClustersPass's two scans) into the same pass.
class AssignConsumer final : public ScanConsumer {
 public:
  /// `medoids` (k x d) and `dims` (k sets) must outlive the scan.
  Status Bind(const Matrix* medoids, const std::vector<DimensionSet>* dims,
              bool segmental_normalization, bool accumulate_centroids);

  /// Enables the prefix screen for the per-point argmin (null disables
  /// it — the ablation default). The prefix screen reuses the exact
  /// accumulation chain, so it is profitable at every dimensionality the
  /// policy admits and needs no active projection; labels are
  /// bit-identical either way.
  void SetSketch(const SketchPlan* sketch) { sketch_ = sketch; }

  Status Prepare(const ScanGeometry& geometry) override;
  void ConsumeBlock(size_t block_index, size_t first_row,
                    std::span<const double> data, size_t rows) override;
  Status Merge() override;
  // Explicit no-op: Prepare() overwrites every partial Merge() reads
  // (see the rollback note at the top of this header).
  void Reset() override {}
  uint64_t distance_evals() const override { return distance_evals_; }
  KernelStats kernel_stats() const override;

  /// Per-point labels in [0, k), valid after Merge. The reference stays
  /// stable across scans (the vector is a long-lived member), so it can
  /// be bound into a follow-up consumer.
  const std::vector<int>& labels() const { return labels_; }
  /// Moves the labels out (one-shot use; surrenders buffer reuse).
  std::vector<int> TakeLabels() { return std::move(labels_); }
  /// Cluster centroids (k x d) and sizes; valid after Merge when bound
  /// with accumulate_centroids = true.
  const Matrix& centroids() const { return centroids_; }
  const std::vector<size_t>& cluster_sizes() const { return counts_; }

 private:
  const Matrix* medoids_ = nullptr;
  const std::vector<DimensionSet>* dims_sets_ = nullptr;
  std::vector<std::vector<uint32_t>> dim_lists_;
  bool segmental_ = true;
  bool accumulate_ = false;
  const SketchPlan* sketch_ = nullptr;
  size_t max_prefix_ = 0;  // prefix-screen length cap (0 = screen off)
  std::vector<int> labels_;
  std::vector<BlockSums> partials_;
  std::vector<KernelScratch> scratch_;  // [block]
  Matrix centroids_;
  std::vector<size_t> counts_;
  size_t dims_ = 0;
  uint64_t distance_evals_ = 0;
};

/// Refinement assignment: like AssignConsumer but a point farther from
/// every medoid than that medoid's sphere of influence is labeled
/// kOutlierLabel (when detect_outliers). Optionally fuses centroid
/// accumulation over the non-outlier points.
class RefineAssignConsumer final : public ScanConsumer {
 public:
  Status Bind(const Matrix* medoids, const std::vector<DimensionSet>* dims,
              const std::vector<double>* spheres,
              bool segmental_normalization, bool detect_outliers,
              bool accumulate_centroids);

  /// Enables the prefix screen (see AssignConsumer::SetSketch); sphere
  /// membership flags and outlier labels are bit-identical either way.
  void SetSketch(const SketchPlan* sketch) { sketch_ = sketch; }

  Status Prepare(const ScanGeometry& geometry) override;
  void ConsumeBlock(size_t block_index, size_t first_row,
                    std::span<const double> data, size_t rows) override;
  Status Merge() override;
  // Explicit no-op: Prepare() overwrites every partial Merge() reads
  // (see the rollback note at the top of this header).
  void Reset() override {}
  uint64_t distance_evals() const override { return distance_evals_; }
  KernelStats kernel_stats() const override;

  const std::vector<int>& labels() const { return labels_; }
  /// Moves the labels out (one-shot use; surrenders buffer reuse).
  std::vector<int> TakeLabels() { return std::move(labels_); }
  const Matrix& centroids() const { return centroids_; }
  const std::vector<size_t>& cluster_sizes() const { return counts_; }

 private:
  const Matrix* medoids_ = nullptr;
  const std::vector<DimensionSet>* dims_sets_ = nullptr;
  const std::vector<double>* spheres_ = nullptr;
  std::vector<std::vector<uint32_t>> dim_lists_;
  bool segmental_ = true;
  bool detect_outliers_ = true;
  bool accumulate_ = false;
  const SketchPlan* sketch_ = nullptr;
  size_t max_prefix_ = 0;  // prefix-screen length cap (0 = screen off)
  std::vector<int> labels_;
  std::vector<BlockSums> partials_;
  std::vector<KernelScratch> scratch_;  // [block]
  Matrix centroids_;
  std::vector<size_t> counts_;
  size_t dims_ = 0;
  uint64_t distance_evals_ = 0;
};

/// Cluster statistics (refinement phase): X(i, j) = average |p_j - m_ij|
/// over the points labeled i (outliers skipped; empty clusters keep
/// all-zero rows).
class ClusterStatsConsumer final : public ScanConsumer {
 public:
  /// `labels` holds one label per source row; both pointers must outlive
  /// the scan.
  Status Bind(const Matrix* medoids, const std::vector<int>* labels);

  Status Prepare(const ScanGeometry& geometry) override;
  void ConsumeBlock(size_t block_index, size_t first_row,
                    std::span<const double> data, size_t rows) override;
  Status Merge() override;
  // Explicit no-op: Prepare() overwrites every partial Merge() reads
  // (see the rollback note at the top of this header).
  void Reset() override {}
  KernelStats kernel_stats() const override;

  const Matrix& stats() const { return stats_; }
  Matrix TakeStats() { return std::move(stats_); }

 private:
  const Matrix* medoids_ = nullptr;
  const std::vector<int>* labels_ = nullptr;
  std::vector<BlockSums> partials_;
  std::vector<KernelScratch> scratch_;  // [block]
  Matrix stats_;
  size_t dims_ = 0;
};

/// Standalone centroid accumulation (first scan of the classic
/// EvaluateClustersPass): per-cluster coordinate means over non-outlier
/// points.
class CentroidConsumer final : public ScanConsumer {
 public:
  Status Bind(const std::vector<int>* labels, size_t num_clusters);

  Status Prepare(const ScanGeometry& geometry) override;
  void ConsumeBlock(size_t block_index, size_t first_row,
                    std::span<const double> data, size_t rows) override;
  Status Merge() override;
  // Explicit no-op: Prepare() overwrites every partial Merge() reads
  // (see the rollback note at the top of this header).
  void Reset() override {}

  const Matrix& centroids() const { return centroids_; }
  const std::vector<size_t>& cluster_sizes() const { return counts_; }

 private:
  const std::vector<int>* labels_ = nullptr;
  size_t num_clusters_ = 0;
  std::vector<BlockSums> partials_;
  Matrix centroids_;
  std::vector<size_t> counts_;
  size_t dims_ = 0;
};

/// Deviation evaluation (second scan of EvaluateClustersPass, Figure 6):
/// accumulates per-dimension absolute deviations from the bound centroids
/// and reduces them to the paper's objective — the size-weighted average,
/// over non-empty clusters, of the mean per-dimension deviation on the
/// cluster's dimensions.
class DeviationConsumer final : public ScanConsumer {
 public:
  /// `centroids`/`cluster_sizes` are typically the outputs of an
  /// AssignConsumer or CentroidConsumer merged in an earlier scan; all
  /// pointers must outlive the scan.
  Status Bind(const std::vector<int>* labels, const Matrix* centroids,
              const std::vector<size_t>* cluster_sizes,
              const std::vector<DimensionSet>* dims);

  Status Prepare(const ScanGeometry& geometry) override;
  void ConsumeBlock(size_t block_index, size_t first_row,
                    std::span<const double> data, size_t rows) override;
  Status Merge() override;
  // Explicit no-op: Prepare() overwrites every partial Merge() reads
  // (see the rollback note at the top of this header).
  void Reset() override {}
  KernelStats kernel_stats() const override;

  /// The objective value, valid after Merge.
  double objective() const { return objective_; }

 private:
  const std::vector<int>* labels_ = nullptr;
  const Matrix* centroids_ = nullptr;
  const std::vector<size_t>* counts_ = nullptr;
  const std::vector<DimensionSet>* dims_sets_ = nullptr;
  std::vector<std::vector<uint32_t>> dim_lists_;  // cached per-cluster lists
  std::vector<BlockSums> partials_;  // count unused
  std::vector<KernelScratch> scratch_;  // [block]
  Matrix deviation_;
  double objective_ = 0.0;
  size_t dims_ = 0;
};

}  // namespace proclus

#endif  // PROCLUS_CORE_CONSUMERS_H_
