#include "core/consumers.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "distance/metric.h"
#include "distance/segmental.h"
#include "gen/ground_truth.h"

namespace proclus {

namespace {

// Full-space Manhattan segmental distance between two equal-length rows.
inline double FullSegmental(std::span<const double> a,
                            std::span<const double> b) {
  return ManhattanDistance(a, b) / static_cast<double>(a.size());
}

// Materialized dimension lists (the hot loops iterate plain indices).
std::vector<std::vector<uint32_t>> DimLists(
    const std::vector<DimensionSet>& dims) {
  std::vector<std::vector<uint32_t>> lists(dims.size());
  for (size_t i = 0; i < dims.size(); ++i) {
    lists[i] = dims[i].ToVector();
    PROCLUS_CHECK(!lists[i].empty());
  }
  return lists;
}

// Zeroes `m` in place, reallocating only on shape change. A moved-from
// Matrix keeps its shape but loses its storage, so the storage size is
// checked too.
void ResetMatrix(Matrix* m, size_t rows, size_t cols) {
  if (m->rows() != rows || m->cols() != cols ||
      m->data().size() != rows * cols) {
    *m = Matrix(rows, cols);
  } else {
    std::fill(m->data().begin(), m->data().end(), 0.0);
  }
}

}  // namespace

// ---------- LocalityStatsConsumer ----------

Status LocalityStatsConsumer::Bind(
    const Matrix* medoids, std::vector<std::vector<size_t>> variant_rows) {
  if (medoids == nullptr || medoids->rows() == 0)
    return Status::InvalidArgument("no medoids");
  if (variant_rows.empty())
    return Status::InvalidArgument("no medoid-set variants");
  for (const std::vector<size_t>& rows : variant_rows) {
    if (rows.empty()) return Status::InvalidArgument("empty variant");
    for (size_t row : rows)
      if (row >= medoids->rows())
        return Status::InvalidArgument("variant row out of range");
  }
  medoids_ = medoids;
  variant_rows_ = std::move(variant_rows);

  // delta_i = full-space segmental distance from variant medoid i to its
  // nearest other medoid of the same variant (infinity when k == 1).
  deltas_.resize(variant_rows_.size());
  for (size_t v = 0; v < variant_rows_.size(); ++v) {
    const std::vector<size_t>& map = variant_rows_[v];
    const size_t k = map.size();
    deltas_[v].assign(k, std::numeric_limits<double>::infinity());
    for (size_t i = 0; i < k; ++i) {
      for (size_t j = i + 1; j < k; ++j) {
        double dist =
            FullSegmental(medoids_->row(map[i]), medoids_->row(map[j]));
        if (dist < deltas_[v][i]) deltas_[v][i] = dist;
        if (dist < deltas_[v][j]) deltas_[v][j] = dist;
      }
    }
  }
  return Status::OK();
}

Status LocalityStatsConsumer::Bind(const Matrix* medoids) {
  if (medoids == nullptr || medoids->rows() == 0)
    return Status::InvalidArgument("no medoids");
  std::vector<size_t> all(medoids->rows());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  return Bind(medoids, {std::move(all)});
}

Status LocalityStatsConsumer::Prepare(const ScanGeometry& geometry) {
  if (medoids_ == nullptr) return Status::InvalidArgument("Bind not called");
  if (medoids_->cols() != geometry.dims)
    return Status::InvalidArgument("medoid dimensionality mismatch");
  dims_ = geometry.dims;
  partials_.resize(variant_rows_.size());
  for (std::vector<BlockSums>& blocks : partials_)
    blocks.resize(geometry.num_blocks);
  stats_.resize(variant_rows_.size());
  uint64_t pair_evals = 0;
  for (const std::vector<size_t>& map : variant_rows_)
    pair_evals += static_cast<uint64_t>(map.size()) * (map.size() - 1) / 2;
  distance_evals_ =
      static_cast<uint64_t>(geometry.rows) * medoids_->rows() + pair_evals;
  return Status::OK();
}

void LocalityStatsConsumer::ConsumeBlock(size_t block_index, size_t,
                                         std::span<const double> data,
                                         size_t rows) {
  const size_t d = dims_;
  const size_t u = medoids_->rows();
  const size_t num_variants = variant_rows_.size();
  for (size_t v = 0; v < num_variants; ++v) {
    BlockSums& partial = partials_[v][block_index];
    partial.sums.assign(variant_rows_[v].size() * d, 0.0);
    partial.count.assign(variant_rows_[v].size(), 0);
  }
  // Distances to the union of all variants' medoids are computed once per
  // point and shared.
  std::vector<double> dist(u);
  for (size_t r = 0; r < rows; ++r) {
    std::span<const double> point = data.subspan(r * d, d);
    for (size_t m = 0; m < u; ++m)
      dist[m] = FullSegmental(point, medoids_->row(m));
    for (size_t v = 0; v < num_variants; ++v) {
      const std::vector<size_t>& map = variant_rows_[v];
      BlockSums& partial = partials_[v][block_index];
      for (size_t i = 0; i < map.size(); ++i) {
        if (dist[map[i]] <= deltas_[v][i]) {
          auto medoid = medoids_->row(map[i]);
          double* sums = partial.sums.data() + i * d;
          for (size_t j = 0; j < d; ++j) {
            double diff = point[j] - medoid[j];
            sums[j] += diff < 0 ? -diff : diff;
          }
          ++partial.count[i];
        }
      }
    }
  }
}

Status LocalityStatsConsumer::Merge() {
  const size_t d = dims_;
  for (size_t v = 0; v < variant_rows_.size(); ++v) {
    const size_t k = variant_rows_[v].size();
    ResetMatrix(&stats_[v], k, d);
    Matrix& X = stats_[v];
    std::vector<size_t> count(k, 0);
    for (const BlockSums& partial : partials_[v]) {
      if (partial.sums.empty()) continue;
      for (size_t i = 0; i < k; ++i) {
        for (size_t j = 0; j < d; ++j) X(i, j) += partial.sums[i * d + j];
        count[i] += partial.count[i];
      }
    }
    for (size_t i = 0; i < k; ++i) {
      // Every medoid is a data point, so its own locality is non-empty as
      // long as the medoid coordinates came from this source.
      if (count[i] == 0) continue;
      for (size_t j = 0; j < d; ++j)
        X(i, j) /= static_cast<double>(count[i]);
    }
  }
  return Status::OK();
}

// ---------- AssignConsumer ----------

Status AssignConsumer::Bind(const Matrix* medoids,
                            const std::vector<DimensionSet>* dims,
                            bool segmental_normalization,
                            bool accumulate_centroids) {
  if (medoids == nullptr || medoids->rows() == 0)
    return Status::InvalidArgument("no medoids");
  if (dims == nullptr || dims->size() != medoids->rows())
    return Status::InvalidArgument("dimension set count mismatch");
  medoids_ = medoids;
  dims_sets_ = dims;
  dim_lists_ = DimLists(*dims);
  segmental_ = segmental_normalization;
  accumulate_ = accumulate_centroids;
  return Status::OK();
}

Status AssignConsumer::Prepare(const ScanGeometry& geometry) {
  if (medoids_ == nullptr) return Status::InvalidArgument("Bind not called");
  if (medoids_->cols() != geometry.dims)
    return Status::InvalidArgument("medoid dimensionality mismatch");
  dims_ = geometry.dims;
  labels_.resize(geometry.rows);
  if (accumulate_) partials_.resize(geometry.num_blocks);
  distance_evals_ =
      static_cast<uint64_t>(geometry.rows) * medoids_->rows();
  return Status::OK();
}

void AssignConsumer::ConsumeBlock(size_t block_index, size_t first_row,
                                  std::span<const double> data,
                                  size_t rows) {
  const size_t d = dims_;
  const size_t k = medoids_->rows();
  BlockSums* partial = nullptr;
  if (accumulate_) {
    partial = &partials_[block_index];
    partial->sums.assign(k * d, 0.0);
    partial->count.assign(k, 0);
  }
  for (size_t r = 0; r < rows; ++r) {
    std::span<const double> point = data.subspan(r * d, d);
    double best = std::numeric_limits<double>::infinity();
    int best_i = 0;
    for (size_t i = 0; i < k; ++i) {
      double dist = segmental_
                        ? ManhattanSegmentalDistance(point, medoids_->row(i),
                                                     dim_lists_[i])
                        : RestrictedManhattanDistance(point, medoids_->row(i),
                                                      dim_lists_[i]);
      if (dist < best) {
        best = dist;
        best_i = static_cast<int>(i);
      }
    }
    labels_[first_row + r] = best_i;
    if (partial != nullptr) {
      double* sums = partial->sums.data() + static_cast<size_t>(best_i) * d;
      for (size_t j = 0; j < d; ++j) sums[j] += point[j];
      ++partial->count[static_cast<size_t>(best_i)];
    }
  }
}

Status AssignConsumer::Merge() {
  if (!accumulate_) return Status::OK();
  const size_t d = dims_;
  const size_t k = medoids_->rows();
  ResetMatrix(&centroids_, k, d);
  counts_.assign(k, 0);
  for (const BlockSums& partial : partials_) {
    if (partial.sums.empty()) continue;
    for (size_t i = 0; i < k; ++i) {
      for (size_t j = 0; j < d; ++j)
        centroids_(i, j) += partial.sums[i * d + j];
      counts_[i] += partial.count[i];
    }
  }
  for (size_t i = 0; i < k; ++i) {
    if (counts_[i] == 0) continue;
    for (size_t j = 0; j < d; ++j)
      centroids_(i, j) /= static_cast<double>(counts_[i]);
  }
  return Status::OK();
}

// ---------- RefineAssignConsumer ----------

Status RefineAssignConsumer::Bind(const Matrix* medoids,
                                  const std::vector<DimensionSet>* dims,
                                  const std::vector<double>* spheres,
                                  bool segmental_normalization,
                                  bool detect_outliers,
                                  bool accumulate_centroids) {
  if (medoids == nullptr || medoids->rows() == 0)
    return Status::InvalidArgument("no medoids");
  if (dims == nullptr || spheres == nullptr ||
      dims->size() != medoids->rows() ||
      spheres->size() != medoids->rows())
    return Status::InvalidArgument("per-medoid input count mismatch");
  medoids_ = medoids;
  dims_sets_ = dims;
  spheres_ = spheres;
  dim_lists_ = DimLists(*dims);
  segmental_ = segmental_normalization;
  detect_outliers_ = detect_outliers;
  accumulate_ = accumulate_centroids;
  return Status::OK();
}

Status RefineAssignConsumer::Prepare(const ScanGeometry& geometry) {
  if (medoids_ == nullptr) return Status::InvalidArgument("Bind not called");
  if (medoids_->cols() != geometry.dims)
    return Status::InvalidArgument("medoid dimensionality mismatch");
  dims_ = geometry.dims;
  labels_.resize(geometry.rows);
  if (accumulate_) partials_.resize(geometry.num_blocks);
  distance_evals_ =
      static_cast<uint64_t>(geometry.rows) * medoids_->rows();
  return Status::OK();
}

void RefineAssignConsumer::ConsumeBlock(size_t block_index, size_t first_row,
                                        std::span<const double> data,
                                        size_t rows) {
  const size_t d = dims_;
  const size_t k = medoids_->rows();
  BlockSums* partial = nullptr;
  if (accumulate_) {
    partial = &partials_[block_index];
    partial->sums.assign(k * d, 0.0);
    partial->count.assign(k, 0);
  }
  for (size_t r = 0; r < rows; ++r) {
    std::span<const double> point = data.subspan(r * d, d);
    double best = std::numeric_limits<double>::infinity();
    int best_i = 0;
    bool inside_any = false;
    for (size_t i = 0; i < k; ++i) {
      double dist = segmental_
                        ? ManhattanSegmentalDistance(point, medoids_->row(i),
                                                     dim_lists_[i])
                        : RestrictedManhattanDistance(point, medoids_->row(i),
                                                      dim_lists_[i]);
      if (dist <= (*spheres_)[i]) inside_any = true;
      if (dist < best) {
        best = dist;
        best_i = static_cast<int>(i);
      }
    }
    const bool outlier = detect_outliers_ && !inside_any;
    labels_[first_row + r] = outlier ? kOutlierLabel : best_i;
    if (partial != nullptr && !outlier) {
      double* sums = partial->sums.data() + static_cast<size_t>(best_i) * d;
      for (size_t j = 0; j < d; ++j) sums[j] += point[j];
      ++partial->count[static_cast<size_t>(best_i)];
    }
  }
}

Status RefineAssignConsumer::Merge() {
  if (!accumulate_) return Status::OK();
  const size_t d = dims_;
  const size_t k = medoids_->rows();
  ResetMatrix(&centroids_, k, d);
  counts_.assign(k, 0);
  for (const BlockSums& partial : partials_) {
    if (partial.sums.empty()) continue;
    for (size_t i = 0; i < k; ++i) {
      for (size_t j = 0; j < d; ++j)
        centroids_(i, j) += partial.sums[i * d + j];
      counts_[i] += partial.count[i];
    }
  }
  for (size_t i = 0; i < k; ++i) {
    if (counts_[i] == 0) continue;
    for (size_t j = 0; j < d; ++j)
      centroids_(i, j) /= static_cast<double>(counts_[i]);
  }
  return Status::OK();
}

// ---------- ClusterStatsConsumer ----------

Status ClusterStatsConsumer::Bind(const Matrix* medoids,
                                  const std::vector<int>* labels) {
  if (medoids == nullptr || medoids->rows() == 0)
    return Status::InvalidArgument("no medoids");
  if (labels == nullptr) return Status::InvalidArgument("no labels");
  medoids_ = medoids;
  labels_ = labels;
  return Status::OK();
}

Status ClusterStatsConsumer::Prepare(const ScanGeometry& geometry) {
  if (medoids_ == nullptr) return Status::InvalidArgument("Bind not called");
  if (labels_->size() != geometry.rows)
    return Status::InvalidArgument("label count mismatch");
  dims_ = geometry.dims;
  partials_.resize(geometry.num_blocks);
  return Status::OK();
}

void ClusterStatsConsumer::ConsumeBlock(size_t block_index, size_t first_row,
                                        std::span<const double> data,
                                        size_t rows) {
  const size_t d = dims_;
  const size_t k = medoids_->rows();
  BlockSums& partial = partials_[block_index];
  partial.sums.assign(k * d, 0.0);
  partial.count.assign(k, 0);
  for (size_t r = 0; r < rows; ++r) {
    int label = (*labels_)[first_row + r];
    if (label == kOutlierLabel) continue;
    size_t i = static_cast<size_t>(label);
    // invariant: labels come from AssignConsumer, which only emits
    // kOutlierLabel or medoid indices in [0, k).
    PROCLUS_CHECK(i < k);
    std::span<const double> point = data.subspan(r * d, d);
    auto medoid = medoids_->row(i);
    double* sums = partial.sums.data() + i * d;
    for (size_t j = 0; j < d; ++j) {
      double diff = point[j] - medoid[j];
      sums[j] += diff < 0 ? -diff : diff;
    }
    ++partial.count[i];
  }
}

Status ClusterStatsConsumer::Merge() {
  const size_t d = dims_;
  const size_t k = medoids_->rows();
  ResetMatrix(&stats_, k, d);
  std::vector<size_t> count(k, 0);
  for (const BlockSums& partial : partials_) {
    if (partial.sums.empty()) continue;
    for (size_t i = 0; i < k; ++i) {
      for (size_t j = 0; j < d; ++j)
        stats_(i, j) += partial.sums[i * d + j];
      count[i] += partial.count[i];
    }
  }
  for (size_t i = 0; i < k; ++i) {
    if (count[i] == 0) continue;
    for (size_t j = 0; j < d; ++j)
      stats_(i, j) /= static_cast<double>(count[i]);
  }
  return Status::OK();
}

// ---------- CentroidConsumer ----------

Status CentroidConsumer::Bind(const std::vector<int>* labels,
                              size_t num_clusters) {
  if (labels == nullptr) return Status::InvalidArgument("no labels");
  labels_ = labels;
  num_clusters_ = num_clusters;
  return Status::OK();
}

Status CentroidConsumer::Prepare(const ScanGeometry& geometry) {
  if (labels_ == nullptr) return Status::InvalidArgument("Bind not called");
  if (labels_->size() != geometry.rows)
    return Status::InvalidArgument("label count mismatch");
  dims_ = geometry.dims;
  partials_.resize(geometry.num_blocks);
  return Status::OK();
}

void CentroidConsumer::ConsumeBlock(size_t block_index, size_t first_row,
                                    std::span<const double> data,
                                    size_t rows) {
  const size_t d = dims_;
  const size_t k = num_clusters_;
  BlockSums& partial = partials_[block_index];
  partial.sums.assign(k * d, 0.0);
  partial.count.assign(k, 0);
  for (size_t r = 0; r < rows; ++r) {
    int label = (*labels_)[first_row + r];
    if (label == kOutlierLabel) continue;
    size_t i = static_cast<size_t>(label);
    // invariant: labels come from AssignConsumer, which only emits
    // kOutlierLabel or medoid indices in [0, k).
    PROCLUS_CHECK(i < k);
    std::span<const double> point = data.subspan(r * d, d);
    double* sums = partial.sums.data() + i * d;
    for (size_t j = 0; j < d; ++j) sums[j] += point[j];
    ++partial.count[i];
  }
}

Status CentroidConsumer::Merge() {
  const size_t d = dims_;
  const size_t k = num_clusters_;
  ResetMatrix(&centroids_, k, d);
  counts_.assign(k, 0);
  for (const BlockSums& partial : partials_) {
    if (partial.sums.empty()) continue;
    for (size_t i = 0; i < k; ++i) {
      for (size_t j = 0; j < d; ++j)
        centroids_(i, j) += partial.sums[i * d + j];
      counts_[i] += partial.count[i];
    }
  }
  for (size_t i = 0; i < k; ++i) {
    if (counts_[i] == 0) continue;
    for (size_t j = 0; j < d; ++j)
      centroids_(i, j) /= static_cast<double>(counts_[i]);
  }
  return Status::OK();
}

// ---------- DeviationConsumer ----------

Status DeviationConsumer::Bind(const std::vector<int>* labels,
                               const Matrix* centroids,
                               const std::vector<size_t>* cluster_sizes,
                               const std::vector<DimensionSet>* dims) {
  if (labels == nullptr || centroids == nullptr || cluster_sizes == nullptr ||
      dims == nullptr)
    return Status::InvalidArgument("null deviation input");
  if (dims->size() != centroids->rows() ||
      cluster_sizes->size() != centroids->rows())
    return Status::InvalidArgument("per-cluster input count mismatch");
  labels_ = labels;
  centroids_ = centroids;
  counts_ = cluster_sizes;
  dims_sets_ = dims;
  return Status::OK();
}

Status DeviationConsumer::Prepare(const ScanGeometry& geometry) {
  if (labels_ == nullptr) return Status::InvalidArgument("Bind not called");
  if (labels_->size() != geometry.rows)
    return Status::InvalidArgument("label count mismatch");
  dims_ = geometry.dims;
  partials_.resize(geometry.num_blocks);
  return Status::OK();
}

void DeviationConsumer::ConsumeBlock(size_t block_index, size_t first_row,
                                     std::span<const double> data,
                                     size_t rows) {
  const size_t d = dims_;
  const size_t k = centroids_->rows();
  BlockSums& partial = partials_[block_index];
  partial.sums.assign(k * d, 0.0);
  for (size_t r = 0; r < rows; ++r) {
    int label = (*labels_)[first_row + r];
    if (label == kOutlierLabel) continue;
    size_t i = static_cast<size_t>(label);
    std::span<const double> point = data.subspan(r * d, d);
    double* sums = partial.sums.data() + i * d;
    for (size_t j = 0; j < d; ++j) {
      double diff = point[j] - (*centroids_)(i, j);
      sums[j] += diff < 0 ? -diff : diff;
    }
  }
}

Status DeviationConsumer::Merge() {
  const size_t d = dims_;
  const size_t k = centroids_->rows();
  ResetMatrix(&deviation_, k, d);
  for (const BlockSums& partial : partials_) {
    if (partial.sums.empty()) continue;
    for (size_t i = 0; i < k; ++i)
      for (size_t j = 0; j < d; ++j)
        deviation_(i, j) += partial.sums[i * d + j];
  }

  double weighted = 0.0;
  size_t clustered = 0;
  for (size_t i = 0; i < k; ++i) {
    const size_t count = (*counts_)[i];
    if (count == 0) continue;
    std::vector<uint32_t> dim_list = (*dims_sets_)[i].ToVector();
    // invariant: FindDimensions allocates >= 2 dimensions per medoid.
    PROCLUS_CHECK(!dim_list.empty());
    double w = 0.0;
    for (uint32_t j : dim_list)
      w += deviation_(i, j) / static_cast<double>(count);
    w /= static_cast<double>(dim_list.size());
    weighted += w * static_cast<double>(count);
    clustered += count;
  }
  objective_ =
      clustered == 0 ? 0.0 : weighted / static_cast<double>(clustered);
  return Status::OK();
}

}  // namespace proclus
