#include "core/consumers.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "distance/batch.h"
#include "gen/ground_truth.h"

namespace proclus {

namespace {

// Full-space Manhattan segmental distance between two equal-length rows.
inline double FullSegmental(std::span<const double> a,
                            std::span<const double> b) {
  return ManhattanDistance(a, b) / static_cast<double>(a.size());
}

// Sums a consumer's per-block kernel scratches for kernel_stats().
ScanConsumer::KernelStats SumKernelStats(
    const std::vector<KernelScratch>& scratches) {
  ScanConsumer::KernelStats totals;
  for (const KernelScratch& scratch : scratches) totals.Accumulate(scratch);
  return totals;
}

// Materialized dimension lists (the hot loops iterate plain indices).
std::vector<std::vector<uint32_t>> DimLists(
    const std::vector<DimensionSet>& dims) {
  std::vector<std::vector<uint32_t>> lists(dims.size());
  for (size_t i = 0; i < dims.size(); ++i) {
    lists[i] = dims[i].ToVector();
    PROCLUS_CHECK(!lists[i].empty());
  }
  return lists;
}

// Zeroes `m` in place, reallocating only on shape change. A moved-from
// Matrix keeps its shape but loses its storage, so the storage size is
// checked too.
void ResetMatrix(Matrix* m, size_t rows, size_t cols) {
  if (m->rows() != rows || m->cols() != cols ||
      m->data().size() != rows * cols) {
    *m = Matrix(rows, cols);
  } else {
    std::fill(m->data().begin(), m->data().end(), 0.0);
  }
}

}  // namespace

// ---------- LocalityStatsConsumer ----------

Status LocalityStatsConsumer::Bind(
    const Matrix* medoids, std::vector<std::vector<size_t>> variant_rows) {
  if (medoids == nullptr || medoids->rows() == 0)
    return Status::InvalidArgument("no medoids");
  if (variant_rows.empty())
    return Status::InvalidArgument("no medoid-set variants");
  for (const std::vector<size_t>& rows : variant_rows) {
    if (rows.empty()) return Status::InvalidArgument("empty variant");
    for (size_t row : rows)
      if (row >= medoids->rows())
        return Status::InvalidArgument("variant row out of range");
  }
  medoids_ = medoids;
  variant_rows_ = std::move(variant_rows);
  cache_ = nullptr;
  slots_.clear();

  // delta_i = full-space segmental distance from variant medoid i to its
  // nearest other medoid of the same variant (infinity when k == 1).
  deltas_.resize(variant_rows_.size());
  for (size_t v = 0; v < variant_rows_.size(); ++v) {
    const std::vector<size_t>& map = variant_rows_[v];
    const size_t k = map.size();
    deltas_[v].assign(k, std::numeric_limits<double>::infinity());
    for (size_t i = 0; i < k; ++i) {
      for (size_t j = i + 1; j < k; ++j) {
        double dist =
            FullSegmental(medoids_->row(map[i]), medoids_->row(map[j]));
        if (dist < deltas_[v][i]) deltas_[v][i] = dist;
        if (dist < deltas_[v][j]) deltas_[v][j] = dist;
      }
    }
  }
  return Status::OK();
}

Status LocalityStatsConsumer::Bind(const Matrix* medoids) {
  if (medoids == nullptr || medoids->rows() == 0)
    return Status::InvalidArgument("no medoids");
  std::vector<size_t> all(medoids->rows());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  return Bind(medoids, {std::move(all)});
}

Status LocalityStatsConsumer::Bind(
    const Matrix* medoids, std::vector<std::vector<size_t>> variant_rows,
    std::span<const size_t> slots, MedoidDistanceCache* cache) {
  PROCLUS_RETURN_IF_ERROR(Bind(medoids, std::move(variant_rows)));
  if (cache == nullptr) return Status::OK();
  if (slots.size() != medoids_->rows())
    return Status::InvalidArgument("one slot id per medoid row required");
  for (size_t i = 0; i < slots.size(); ++i)
    for (size_t j = i + 1; j < slots.size(); ++j)
      if (slots[i] == slots[j])
        return Status::InvalidArgument("duplicate slot in cached bind");
  cache_ = cache;
  slots_.assign(slots.begin(), slots.end());
  return Status::OK();
}

Status LocalityStatsConsumer::Prepare(const ScanGeometry& geometry) {
  if (medoids_ == nullptr) return Status::InvalidArgument("Bind not called");
  if (medoids_->cols() != geometry.dims)
    return Status::InvalidArgument("medoid dimensionality mismatch");
  dims_ = geometry.dims;
  rows_ = geometry.rows;
  const size_t u = medoids_->rows();
  partials_.resize(variant_rows_.size());
  for (std::vector<BlockSums>& blocks : partials_)
    blocks.resize(geometry.num_blocks);
  PrepareKernelScratch(scratch_, geometry.num_blocks);
  cols_.resize(geometry.num_blocks);
  exact_cols_.resize(geometry.num_blocks);
  stats_.resize(variant_rows_.size());

  // Sketch screen setup: project the union medoids once per scan and
  // derive each union row's pruning threshold — the largest locality
  // delta any variant compares that row's column against. A column value
  // whose lower bound exceeds the threshold decides every comparison
  // identically without the exact distance.
  screening_ = sketch_ != nullptr && sketch_->ScreenProfitable(geometry.dims);
  if (screening_) {
    const size_t width = sketch_->width;
    union_sketches_.resize(u * width);
    union_masses_.resize(u);
    for (size_t m = 0; m < u; ++m)
      union_masses_[m] = sketch_->ProjectPoint(
          medoids_->row(m), union_sketches_.data() + m * width);
    thresholds_.assign(u, -std::numeric_limits<double>::infinity());
    for (size_t v = 0; v < variant_rows_.size(); ++v) {
      const std::vector<size_t>& map = variant_rows_[v];
      for (size_t i = 0; i < map.size(); ++i)
        thresholds_[map[i]] = std::max(thresholds_[map[i]], deltas_[v][i]);
    }
  }

  fresh_rows_.clear();
  fresh_entries_.clear();
  if (cache_ != nullptr) {
    // One clock tick per scan attempt. Entries touched during this
    // attempt carry the current tick and are protected from eviction;
    // validity is only committed by Merge, so an attempt that fails and
    // retries simply reclaims its entries and refills them.
    ++cache_->clock;
    // Reserve before taking any pointers: push_back must never relocate
    // entries mid-Prepare, and the eviction cap must always leave an
    // unprotected entry to reuse.
    const size_t capacity = std::max<size_t>(16, 2 * u + 4);
    cache_->entries.reserve(
        std::max(capacity, cache_->entries.size() + u));
    col_base_.assign(u, nullptr);
    exact_base_.assign(u, nullptr);
    for (size_t m = 0; m < u; ++m) {
      const size_t slot = slots_[m];
      MedoidDistanceCache::Entry* entry = nullptr;
      for (MedoidDistanceCache::Entry& e : cache_->entries)
        if (e.slot == slot) {
          entry = &e;
          break;
        }
      const bool hit = entry != nullptr && entry->valid &&
                       entry->dist.size() == geometry.rows;
      if (hit) {
        ++cache_->hits;
      } else {
        ++cache_->misses;
        if (entry == nullptr) {
          if (cache_->entries.size() < capacity) {
            entry = &cache_->entries.emplace_back();
          } else {
            // Evict the least-recently-used entry not touched this scan.
            for (MedoidDistanceCache::Entry& e : cache_->entries)
              if (e.last_used != cache_->clock &&
                  (entry == nullptr || e.last_used < entry->last_used))
                entry = &e;
            // invariant: capacity >= 2u + 4 and at most u entries carry
            // the current tick, so an evictable entry always exists.
            PROCLUS_CHECK(entry != nullptr);
          }
        }
        entry->slot = slot;
        entry->valid = false;
        entry->dist.resize(geometry.rows);
        // A screened fill stores exact flags alongside the column; an
        // unscreened fill restores the all-exact layout (empty vector).
        if (screening_) {
          entry->exact.resize(geometry.rows);
        } else {
          entry->exact.clear();
        }
        fresh_rows_.push_back(m);
        fresh_entries_.push_back(
            static_cast<size_t>(entry - cache_->entries.data()));
      }
      entry->last_used = cache_->clock;
      col_base_[m] = entry->dist.data();
      exact_base_[m] = entry->exact.empty() ? nullptr : entry->exact.data();
    }
    ResetMatrix(&fresh_medoids_, fresh_rows_.size(), geometry.dims);
    for (size_t f = 0; f < fresh_rows_.size(); ++f) {
      auto src = medoids_->row(fresh_rows_[f]);
      for (size_t j = 0; j < geometry.dims; ++j) fresh_medoids_(f, j) = src[j];
    }
    if (screening_) {
      const size_t width = sketch_->width;
      fresh_sketches_.resize(fresh_rows_.size() * width);
      fresh_masses_.resize(fresh_rows_.size());
      fresh_thresholds_.resize(fresh_rows_.size());
      for (size_t f = 0; f < fresh_rows_.size(); ++f) {
        const size_t m = fresh_rows_[f];
        std::copy(union_sketches_.begin() + m * width,
                  union_sketches_.begin() + (m + 1) * width,
                  fresh_sketches_.begin() + f * width);
        fresh_masses_[f] = union_masses_[m];
        fresh_thresholds_[f] = thresholds_[m];
      }
    }
  }

  uint64_t pair_evals = 0;
  for (const std::vector<size_t>& map : variant_rows_)
    pair_evals += static_cast<uint64_t>(map.size()) * (map.size() - 1) / 2;
  const uint64_t scored = cache_ != nullptr ? fresh_rows_.size() : u;
  distance_evals_ =
      static_cast<uint64_t>(geometry.rows) * scored + pair_evals;
  return Status::OK();
}

void LocalityStatsConsumer::ConsumeBlock(size_t block_index, size_t first_row,
                                         std::span<const double> data,
                                         size_t rows) {
  const size_t d = dims_;
  const size_t u = medoids_->rows();
  const size_t num_variants = variant_rows_.size();
  for (size_t v = 0; v < num_variants; ++v) {
    BlockSums& partial = partials_[v][block_index];
    partial.sums.assign(variant_rows_[v].size() * d, 0.0);
    partial.count.assign(variant_rows_[v].size(), 0);
  }
  // Distances to the union of all variants' medoids are computed once per
  // point and shared: one many-reference kernel scores all u medoids
  // against each gathered sub-tile. Dividing the Manhattan sum by d
  // afterwards is exactly FullSegmental's operation order, so dist stays
  // bit-identical to the per-point scalar loop.
  //
  // With a cache bound, only medoids whose column missed in Prepare are
  // scored: the kernel scatters each fresh column straight into its cache
  // entry at this block's row range (distinct blocks write disjoint
  // ranges, so concurrent fills are safe), and hit columns are reused
  // verbatim — bit-identical by construction.
  KernelScratch& scratch = scratch_[block_index];
  std::vector<const double*>& cols = cols_[block_index];
  cols.resize(u);
  const double denom = static_cast<double>(d);
  if (cache_ == nullptr) {
    scratch.dist.resize(u * rows);
    double* dist = scratch.dist.data();
    if (screening_) {
      // Screened fill: the kernel normalizes internally and stores a
      // guaranteed lower bound for pruned rows. No exact flags are kept
      // — a pruned value exceeds every threshold this scan compares it
      // against, so the decision loop below reads it unchanged.
      const SketchSpec spec = sketch_->Spec();
      SketchProjectBlock(data, rows, d, spec, scratch);
      scratch.outs.resize(u);
      for (size_t m = 0; m < u; ++m) scratch.outs[m] = dist + m * rows;
      ManhattanManyScreenedBatch(
          data, rows, d, *medoids_, union_sketches_.data(),
          union_masses_.data(), spec, thresholds_, denom, scratch,
          std::span<double* const>(scratch.outs), /*exacts=*/{});
      for (size_t m = 0; m < u; ++m) cols[m] = dist + m * rows;
    } else {
      ManhattanManyBatch(data, rows, d, *medoids_, scratch, dist);
      for (size_t m = 0; m < u; ++m) {
        double* row = dist + m * rows;
        for (size_t r = 0; r < rows; ++r) row[r] /= denom;
        cols[m] = row;
      }
    }
  } else {
    // Ownership contract (consumers.h): this block may write only the
    // row range it owns inside each fresh cache column.
    PROCLUS_DCHECK(first_row + rows <= rows_);
    const size_t fresh = fresh_rows_.size();
    if (fresh > 0) {
      scratch.outs.resize(fresh);
      for (size_t f = 0; f < fresh; ++f)
        scratch.outs[f] = col_base_[fresh_rows_[f]] + first_row;
      if (screening_) {
        // Screened cache fill: pruned rows persist their lower bound
        // with exact flag 0, so a later scan (whose thresholds differ)
        // can still decide or locally recompute them (write-free reuse).
        const SketchSpec spec = sketch_->Spec();
        SketchProjectBlock(data, rows, d, spec, scratch);
        scratch.exact_outs.resize(fresh);
        for (size_t f = 0; f < fresh; ++f)
          scratch.exact_outs[f] = exact_base_[fresh_rows_[f]] + first_row;
        ManhattanManyScreenedBatch(
            data, rows, d, fresh_medoids_, fresh_sketches_.data(),
            fresh_masses_.data(), spec, fresh_thresholds_, denom, scratch,
            std::span<double* const>(scratch.outs),
            std::span<uint8_t* const>(scratch.exact_outs));
      } else {
        ManhattanManyBatch(data, rows, d, fresh_medoids_, scratch,
                           std::span<double* const>(scratch.outs));
        for (size_t f = 0; f < fresh; ++f) {
          double* col = scratch.outs[f];
          for (size_t r = 0; r < rows; ++r) col[r] /= denom;
        }
      }
    }
    for (size_t m = 0; m < u; ++m) cols[m] = col_base_[m] + first_row;
    std::vector<const uint8_t*>& excols = exact_cols_[block_index];
    excols.resize(u);
    for (size_t m = 0; m < u; ++m)
      excols[m] = exact_base_[m] == nullptr ? nullptr
                                            : exact_base_[m] + first_row;
  }
  const std::vector<const uint8_t*>* excols =
      cache_ == nullptr ? nullptr : &exact_cols_[block_index];
  for (size_t r = 0; r < rows; ++r) {
    std::span<const double> point = data.subspan(r * d, d);
    for (size_t v = 0; v < num_variants; ++v) {
      const std::vector<size_t>& map = variant_rows_[v];
      BlockSums& partial = partials_[v][block_index];
      for (size_t i = 0; i < map.size(); ++i) {
        const size_t m = map[i];
        double dist = cols[m][r];
        if (excols != nullptr && (*excols)[m] != nullptr &&
            (*excols)[m][r] == 0) {
          // Cached lower bound from a screened fill. If it already
          // exceeds this variant's delta the exact distance would too;
          // otherwise recompute the distance locally (same operation
          // order as the batch fill, so the decision is bit-identical
          // to an unscreened run). The recomputed value is NOT stored
          // back — reuse is write-free under re-delivery and hedging.
          if (dist > deltas_[v][i]) continue;
          dist = FullSegmental(point, medoids_->row(m));
        }
        if (dist <= deltas_[v][i]) {
          auto medoid = medoids_->row(m);
          double* sums = partial.sums.data() + i * d;
          for (size_t j = 0; j < d; ++j) {
            double diff = point[j] - medoid[j];
            sums[j] += diff < 0 ? -diff : diff;
          }
          ++partial.count[i];
        }
      }
    }
  }
}

ScanConsumer::KernelStats LocalityStatsConsumer::kernel_stats() const {
  return SumKernelStats(scratch_);
}

Status LocalityStatsConsumer::Merge() {
  const size_t d = dims_;
  for (size_t v = 0; v < variant_rows_.size(); ++v) {
    const size_t k = variant_rows_[v].size();
    ResetMatrix(&stats_[v], k, d);
    Matrix& X = stats_[v];
    std::vector<size_t> count(k, 0);
    for (const BlockSums& partial : partials_[v]) {
      if (partial.sums.empty()) continue;
      for (size_t i = 0; i < k; ++i) {
        for (size_t j = 0; j < d; ++j) X(i, j) += partial.sums[i * d + j];
        count[i] += partial.count[i];
      }
    }
    for (size_t i = 0; i < k; ++i) {
      // Every medoid is a data point, so its own locality is non-empty as
      // long as the medoid coordinates came from this source.
      if (count[i] == 0) continue;
      for (size_t j = 0; j < d; ++j)
        X(i, j) /= static_cast<double>(count[i]);
    }
  }
  // Cache columns become reusable only once the whole scan succeeded:
  // Merge runs after every block, so each fresh column is fully written.
  // A failed attempt never reaches this point, leaves valid == false, and
  // the retry recomputes the column from scratch.
  if (cache_ != nullptr)
    for (size_t e : fresh_entries_) cache_->entries[e].valid = true;
  return Status::OK();
}

// ---------- AssignConsumer ----------

Status AssignConsumer::Bind(const Matrix* medoids,
                            const std::vector<DimensionSet>* dims,
                            bool segmental_normalization,
                            bool accumulate_centroids) {
  if (medoids == nullptr || medoids->rows() == 0)
    return Status::InvalidArgument("no medoids");
  if (dims == nullptr || dims->size() != medoids->rows())
    return Status::InvalidArgument("dimension set count mismatch");
  medoids_ = medoids;
  dims_sets_ = dims;
  dim_lists_ = DimLists(*dims);
  segmental_ = segmental_normalization;
  accumulate_ = accumulate_centroids;
  max_prefix_ = 0;
  for (const std::vector<uint32_t>& list : dim_lists_)
    max_prefix_ = std::max(max_prefix_, PrefixScreenDims(list.size()));
  return Status::OK();
}

Status AssignConsumer::Prepare(const ScanGeometry& geometry) {
  if (medoids_ == nullptr) return Status::InvalidArgument("Bind not called");
  if (medoids_->cols() != geometry.dims)
    return Status::InvalidArgument("medoid dimensionality mismatch");
  dims_ = geometry.dims;
  labels_.resize(geometry.rows);
  if (accumulate_) partials_.resize(geometry.num_blocks);
  PrepareKernelScratch(scratch_, geometry.num_blocks);
  distance_evals_ =
      static_cast<uint64_t>(geometry.rows) * medoids_->rows();
  return Status::OK();
}

void AssignConsumer::ConsumeBlock(size_t block_index, size_t first_row,
                                  std::span<const double> data,
                                  size_t rows) {
  const size_t d = dims_;
  const size_t k = medoids_->rows();
  SegmentalArgminScreenedBatch(data, rows, d, *medoids_, dim_lists_,
                               segmental_, /*spheres=*/{},
                               sketch_ != nullptr ? max_prefix_ : 0,
                               scratch_[block_index],
                               labels_.data() + first_row);
  if (!accumulate_) return;
  BlockSums* partial = &partials_[block_index];
  partial->sums.assign(k * d, 0.0);
  partial->count.assign(k, 0);
  for (size_t r = 0; r < rows; ++r) {
    std::span<const double> point = data.subspan(r * d, d);
    const size_t i = static_cast<size_t>(labels_[first_row + r]);
    double* sums = partial->sums.data() + i * d;
    for (size_t j = 0; j < d; ++j) sums[j] += point[j];
    ++partial->count[i];
  }
}

ScanConsumer::KernelStats AssignConsumer::kernel_stats() const {
  return SumKernelStats(scratch_);
}

Status AssignConsumer::Merge() {
  if (!accumulate_) return Status::OK();
  const size_t d = dims_;
  const size_t k = medoids_->rows();
  ResetMatrix(&centroids_, k, d);
  counts_.assign(k, 0);
  for (const BlockSums& partial : partials_) {
    if (partial.sums.empty()) continue;
    for (size_t i = 0; i < k; ++i) {
      for (size_t j = 0; j < d; ++j)
        centroids_(i, j) += partial.sums[i * d + j];
      counts_[i] += partial.count[i];
    }
  }
  for (size_t i = 0; i < k; ++i) {
    if (counts_[i] == 0) continue;
    for (size_t j = 0; j < d; ++j)
      centroids_(i, j) /= static_cast<double>(counts_[i]);
  }
  return Status::OK();
}

// ---------- RefineAssignConsumer ----------

Status RefineAssignConsumer::Bind(const Matrix* medoids,
                                  const std::vector<DimensionSet>* dims,
                                  const std::vector<double>* spheres,
                                  bool segmental_normalization,
                                  bool detect_outliers,
                                  bool accumulate_centroids) {
  if (medoids == nullptr || medoids->rows() == 0)
    return Status::InvalidArgument("no medoids");
  if (dims == nullptr || spheres == nullptr ||
      dims->size() != medoids->rows() ||
      spheres->size() != medoids->rows())
    return Status::InvalidArgument("per-medoid input count mismatch");
  medoids_ = medoids;
  dims_sets_ = dims;
  spheres_ = spheres;
  dim_lists_ = DimLists(*dims);
  segmental_ = segmental_normalization;
  detect_outliers_ = detect_outliers;
  accumulate_ = accumulate_centroids;
  max_prefix_ = 0;
  for (const std::vector<uint32_t>& list : dim_lists_)
    max_prefix_ = std::max(max_prefix_, PrefixScreenDims(list.size()));
  return Status::OK();
}

Status RefineAssignConsumer::Prepare(const ScanGeometry& geometry) {
  if (medoids_ == nullptr) return Status::InvalidArgument("Bind not called");
  if (medoids_->cols() != geometry.dims)
    return Status::InvalidArgument("medoid dimensionality mismatch");
  dims_ = geometry.dims;
  labels_.resize(geometry.rows);
  if (accumulate_) partials_.resize(geometry.num_blocks);
  PrepareKernelScratch(scratch_, geometry.num_blocks);
  distance_evals_ =
      static_cast<uint64_t>(geometry.rows) * medoids_->rows();
  return Status::OK();
}

void RefineAssignConsumer::ConsumeBlock(size_t block_index, size_t first_row,
                                        std::span<const double> data,
                                        size_t rows) {
  const size_t d = dims_;
  const size_t k = medoids_->rows();
  BlockSums* partial = nullptr;
  if (accumulate_) {
    partial = &partials_[block_index];
    partial->sums.assign(k * d, 0.0);
    partial->count.assign(k, 0);
  }
  KernelScratch& scratch = scratch_[block_index];
  SegmentalArgminScreenedBatch(data, rows, d, *medoids_, dim_lists_,
                               segmental_, *spheres_,
                               sketch_ != nullptr ? max_prefix_ : 0, scratch,
                               labels_.data() + first_row);
  for (size_t r = 0; r < rows; ++r) {
    const bool outlier = detect_outliers_ && scratch.inside[r] == 0;
    if (outlier) {
      labels_[first_row + r] = kOutlierLabel;
      continue;
    }
    if (partial != nullptr) {
      std::span<const double> point = data.subspan(r * d, d);
      const size_t i = static_cast<size_t>(labels_[first_row + r]);
      double* sums = partial->sums.data() + i * d;
      for (size_t j = 0; j < d; ++j) sums[j] += point[j];
      ++partial->count[i];
    }
  }
}

ScanConsumer::KernelStats RefineAssignConsumer::kernel_stats() const {
  return SumKernelStats(scratch_);
}

Status RefineAssignConsumer::Merge() {
  if (!accumulate_) return Status::OK();
  const size_t d = dims_;
  const size_t k = medoids_->rows();
  ResetMatrix(&centroids_, k, d);
  counts_.assign(k, 0);
  for (const BlockSums& partial : partials_) {
    if (partial.sums.empty()) continue;
    for (size_t i = 0; i < k; ++i) {
      for (size_t j = 0; j < d; ++j)
        centroids_(i, j) += partial.sums[i * d + j];
      counts_[i] += partial.count[i];
    }
  }
  for (size_t i = 0; i < k; ++i) {
    if (counts_[i] == 0) continue;
    for (size_t j = 0; j < d; ++j)
      centroids_(i, j) /= static_cast<double>(counts_[i]);
  }
  return Status::OK();
}

// ---------- ClusterStatsConsumer ----------

Status ClusterStatsConsumer::Bind(const Matrix* medoids,
                                  const std::vector<int>* labels) {
  if (medoids == nullptr || medoids->rows() == 0)
    return Status::InvalidArgument("no medoids");
  if (labels == nullptr) return Status::InvalidArgument("no labels");
  medoids_ = medoids;
  labels_ = labels;
  return Status::OK();
}

Status ClusterStatsConsumer::Prepare(const ScanGeometry& geometry) {
  if (medoids_ == nullptr) return Status::InvalidArgument("Bind not called");
  if (labels_->size() != geometry.rows)
    return Status::InvalidArgument("label count mismatch");
  dims_ = geometry.dims;
  partials_.resize(geometry.num_blocks);
  PrepareKernelScratch(scratch_, geometry.num_blocks);
  return Status::OK();
}

void ClusterStatsConsumer::ConsumeBlock(size_t block_index, size_t first_row,
                                        std::span<const double> data,
                                        size_t rows) {
  const size_t d = dims_;
  const size_t k = medoids_->rows();
  BlockSums& partial = partials_[block_index];
  partial.sums.assign(k * d, 0.0);
  partial.count.assign(k, 0);
  LabeledAbsDeviationBatch(data, rows, d, labels_->data() + first_row,
                           *medoids_, scratch_[block_index],
                           partial.sums.data(), partial.count.data());
}

ScanConsumer::KernelStats ClusterStatsConsumer::kernel_stats() const {
  return SumKernelStats(scratch_);
}

Status ClusterStatsConsumer::Merge() {
  const size_t d = dims_;
  const size_t k = medoids_->rows();
  ResetMatrix(&stats_, k, d);
  std::vector<size_t> count(k, 0);
  for (const BlockSums& partial : partials_) {
    if (partial.sums.empty()) continue;
    for (size_t i = 0; i < k; ++i) {
      for (size_t j = 0; j < d; ++j)
        stats_(i, j) += partial.sums[i * d + j];
      count[i] += partial.count[i];
    }
  }
  for (size_t i = 0; i < k; ++i) {
    if (count[i] == 0) continue;
    for (size_t j = 0; j < d; ++j)
      stats_(i, j) /= static_cast<double>(count[i]);
  }
  return Status::OK();
}

// ---------- CentroidConsumer ----------

Status CentroidConsumer::Bind(const std::vector<int>* labels,
                              size_t num_clusters) {
  if (labels == nullptr) return Status::InvalidArgument("no labels");
  labels_ = labels;
  num_clusters_ = num_clusters;
  return Status::OK();
}

Status CentroidConsumer::Prepare(const ScanGeometry& geometry) {
  if (labels_ == nullptr) return Status::InvalidArgument("Bind not called");
  if (labels_->size() != geometry.rows)
    return Status::InvalidArgument("label count mismatch");
  dims_ = geometry.dims;
  partials_.resize(geometry.num_blocks);
  return Status::OK();
}

void CentroidConsumer::ConsumeBlock(size_t block_index, size_t first_row,
                                    std::span<const double> data,
                                    size_t rows) {
  const size_t d = dims_;
  const size_t k = num_clusters_;
  BlockSums& partial = partials_[block_index];
  partial.sums.assign(k * d, 0.0);
  partial.count.assign(k, 0);
  for (size_t r = 0; r < rows; ++r) {
    int label = (*labels_)[first_row + r];
    if (label == kOutlierLabel) continue;
    size_t i = static_cast<size_t>(label);
    // invariant: labels come from AssignConsumer, which only emits
    // kOutlierLabel or medoid indices in [0, k).
    PROCLUS_CHECK(i < k);
    std::span<const double> point = data.subspan(r * d, d);
    double* sums = partial.sums.data() + i * d;
    for (size_t j = 0; j < d; ++j) sums[j] += point[j];
    ++partial.count[i];
  }
}

Status CentroidConsumer::Merge() {
  const size_t d = dims_;
  const size_t k = num_clusters_;
  ResetMatrix(&centroids_, k, d);
  counts_.assign(k, 0);
  for (const BlockSums& partial : partials_) {
    if (partial.sums.empty()) continue;
    for (size_t i = 0; i < k; ++i) {
      for (size_t j = 0; j < d; ++j)
        centroids_(i, j) += partial.sums[i * d + j];
      counts_[i] += partial.count[i];
    }
  }
  for (size_t i = 0; i < k; ++i) {
    if (counts_[i] == 0) continue;
    for (size_t j = 0; j < d; ++j)
      centroids_(i, j) /= static_cast<double>(counts_[i]);
  }
  return Status::OK();
}

// ---------- DeviationConsumer ----------

Status DeviationConsumer::Bind(const std::vector<int>* labels,
                               const Matrix* centroids,
                               const std::vector<size_t>* cluster_sizes,
                               const std::vector<DimensionSet>* dims) {
  if (labels == nullptr || centroids == nullptr || cluster_sizes == nullptr ||
      dims == nullptr)
    return Status::InvalidArgument("null deviation input");
  if (dims->size() != centroids->rows() ||
      cluster_sizes->size() != centroids->rows())
    return Status::InvalidArgument("per-cluster input count mismatch");
  labels_ = labels;
  centroids_ = centroids;
  counts_ = cluster_sizes;
  dims_sets_ = dims;
  // Materialize the per-cluster dimension lists once per Bind; the paper's
  // objective only reads them in Merge, but re-extracting a bitset per
  // cluster per scan is the exact allocation pattern tools/lint.py bans.
  // Empty sets are tolerated here — Merge only requires non-empty lists
  // for clusters that received points.
  dim_lists_.resize(dims->size());
  for (size_t i = 0; i < dims->size(); ++i)
    dim_lists_[i] = (*dims)[i].ToVector();
  return Status::OK();
}

Status DeviationConsumer::Prepare(const ScanGeometry& geometry) {
  if (labels_ == nullptr) return Status::InvalidArgument("Bind not called");
  if (labels_->size() != geometry.rows)
    return Status::InvalidArgument("label count mismatch");
  dims_ = geometry.dims;
  partials_.resize(geometry.num_blocks);
  PrepareKernelScratch(scratch_, geometry.num_blocks);
  return Status::OK();
}

void DeviationConsumer::ConsumeBlock(size_t block_index, size_t first_row,
                                     std::span<const double> data,
                                     size_t rows) {
  const size_t d = dims_;
  const size_t k = centroids_->rows();
  BlockSums& partial = partials_[block_index];
  partial.sums.assign(k * d, 0.0);
  LabeledAbsDeviationBatch(data, rows, d, labels_->data() + first_row,
                           *centroids_, scratch_[block_index],
                           partial.sums.data(), /*count=*/nullptr);
}

ScanConsumer::KernelStats DeviationConsumer::kernel_stats() const {
  return SumKernelStats(scratch_);
}

Status DeviationConsumer::Merge() {
  const size_t d = dims_;
  const size_t k = centroids_->rows();
  ResetMatrix(&deviation_, k, d);
  for (const BlockSums& partial : partials_) {
    if (partial.sums.empty()) continue;
    for (size_t i = 0; i < k; ++i)
      for (size_t j = 0; j < d; ++j)
        deviation_(i, j) += partial.sums[i * d + j];
  }

  double weighted = 0.0;
  size_t clustered = 0;
  for (size_t i = 0; i < k; ++i) {
    const size_t count = (*counts_)[i];
    if (count == 0) continue;
    const std::vector<uint32_t>& dim_list = dim_lists_[i];
    // invariant: FindDimensions allocates >= 2 dimensions per medoid.
    PROCLUS_CHECK(!dim_list.empty());
    double w = 0.0;
    for (uint32_t j : dim_list)
      w += deviation_(i, j) / static_cast<double>(count);
    w /= static_cast<double>(dim_list.size());
    weighted += w * static_cast<double>(count);
    clustered += count;
  }
  objective_ =
      clustered == 0 ? 0.0 : weighted / static_cast<double>(clustered);
  return Status::OK();
}

}  // namespace proclus
