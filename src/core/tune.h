// Automatic selection of the average cluster dimensionality l.
//
// PROCLUS takes l as a user parameter. Section 4.3 of the paper notes
// that the runtime is nearly flat in l, so "it is easy to simply run the
// algorithm a few times and try different values for l". This module
// automates the procedure:
//
//  1. Cluster once with a starting l.
//  2. For each cluster, count the dimensions on which its points are
//     genuinely correlated: average |x_j - centroid_j| below
//     `correlation_fraction` times the dataset-wide average deviation on
//     dimension j (uniform/noise dimensions sit at the global level;
//     correlated ones far below it).
//  3. Re-run PROCLUS with l = (total correlated dims) / k and repeat
//     until the estimate stabilizes.
//
// The count in step 2 does not depend on the l used to produce the
// partition (any reasonable partition reveals which dimensions are
// tight), which is what makes the fixed-point iteration converge fast —
// usually in two rounds.

#ifndef PROCLUS_CORE_TUNE_H_
#define PROCLUS_CORE_TUNE_H_

#include <vector>

#include "common/status.h"
#include "core/proclus.h"

namespace proclus {

/// Options of the l auto-tuner.
struct TuneParams {
  /// l used for the first clustering round.
  double initial_avg_dims = 4.0;
  /// A dimension counts as correlated for a cluster when the cluster's
  /// average deviation on it is below this fraction of the dataset-wide
  /// average deviation on the same dimension.
  double correlation_fraction = 0.5;
  /// Maximum estimate/re-cluster rounds.
  size_t max_rounds = 4;
};

/// One tuning round.
struct TuneRound {
  /// l the round clustered with.
  double avg_dims_used = 0.0;
  /// l estimated from the round's partition.
  double avg_dims_estimated = 0.0;
  /// The paper objective of the round's clustering.
  double objective = 0.0;
};

/// Result of the auto-tuning loop.
struct TuneResult {
  /// Clustering from the final round.
  ProjectedClustering clustering;
  /// The l the final clustering used.
  double selected_avg_dims = 0.0;
  /// Per-round trace.
  std::vector<TuneRound> rounds;
};

/// Estimates the average number of correlated dimensions per cluster of
/// an existing partition (outliers ignored; every cluster contributes at
/// least 2, matching PROCLUS's own constraint). Exposed for testing.
double EstimateAvgDims(const Dataset& dataset,
                       const std::vector<int>& labels, size_t num_clusters,
                       double correlation_fraction = 0.5);

/// Runs the fixed-point tuning loop. `base.avg_dims` is ignored; all
/// other PROCLUS parameters are taken from `base`.
Result<TuneResult> AutoTuneAvgDims(const Dataset& dataset,
                                   const ProclusParams& base,
                                   const TuneParams& tune = {});

}  // namespace proclus

#endif  // PROCLUS_CORE_TUNE_H_
