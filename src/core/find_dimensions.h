// FindDimensions (Figure 4 of the paper): given, for each medoid i, the
// average distance X_{i,j} along each dimension j from a reference point
// set (the locality L_i during the iterative phase, the cluster C_i during
// refinement) to the medoid, select the dimension subsets D_1..D_k.
//
// For each medoid the per-dimension averages are standardized,
//
//   Y_i = mean_j X_{i,j},   sigma_i = stddev_j X_{i,j},
//   Z_{i,j} = (X_{i,j} - Y_i) / sigma_i,
//
// and the k*l most negative Z values are chosen subject to >= 2 dimensions
// per medoid — an instance of the separable convex resource allocation
// problem (Ibaraki & Katoh), solved exactly by a greedy: preallocate the 2
// smallest Z per medoid, then take the globally smallest remaining values.

#ifndef PROCLUS_CORE_FIND_DIMENSIONS_H_
#define PROCLUS_CORE_FIND_DIMENSIONS_H_

#include <vector>

#include "common/dimension_set.h"
#include "common/matrix.h"
#include "common/status.h"

namespace proclus {

/// Standardizes each row of the k x d matrix `X` to Z-scores. Rows with
/// zero spread map to all-zero Z rows (any dimension is then equally good).
Matrix ComputeZScores(const Matrix& X);

/// Exact greedy solution of the constrained selection: picks `total`
/// entries of the k x d matrix `Z` minimizing their sum, with at least
/// `min_per_row` entries per row. Requires min_per_row * k <= total <= k*d.
/// Ties are broken deterministically by (value, row, column).
Result<std::vector<DimensionSet>> AllocateDimensions(const Matrix& Z,
                                                     size_t total,
                                                     size_t min_per_row = 2);

/// Full FindDimensions step: Z-scores of the per-dimension average
/// distances `X` (k rows, d columns), then allocation of round(k * l)
/// dimensions with at least 2 per medoid.
Result<std::vector<DimensionSet>> FindDimensions(const Matrix& X,
                                                 double avg_dims);

}  // namespace proclus

#endif  // PROCLUS_CORE_FIND_DIMENSIONS_H_
