#include "core/passes.h"

#include "core/consumers.h"

namespace proclus {

Result<Matrix> LocalityStatsPass(const PointSource& source,
                                 const Matrix& medoids,
                                 const PassOptions& options,
                                 const SketchPlan* sketch) {
  if (medoids.rows() == 0) return Status::InvalidArgument("no medoids");
  if (medoids.cols() != source.dims())
    return Status::InvalidArgument("medoid dimensionality mismatch");
  LocalityStatsConsumer consumer;
  consumer.SetSketch(sketch);
  PROCLUS_RETURN_IF_ERROR(consumer.Bind(&medoids));
  PROCLUS_RETURN_IF_ERROR(ScanExecutor(options).Run(source, {&consumer}));
  return consumer.TakeStats();
}

Result<Matrix> ClusterStatsPass(const PointSource& source,
                                const Matrix& medoids,
                                const std::vector<int>& labels,
                                const PassOptions& options) {
  if (medoids.rows() == 0) return Status::InvalidArgument("no medoids");
  if (labels.size() != source.size())
    return Status::InvalidArgument("label count mismatch");
  ClusterStatsConsumer consumer;
  PROCLUS_RETURN_IF_ERROR(consumer.Bind(&medoids, &labels));
  PROCLUS_RETURN_IF_ERROR(ScanExecutor(options).Run(source, {&consumer}));
  return consumer.TakeStats();
}

Result<std::vector<int>> AssignPointsPass(
    const PointSource& source, const Matrix& medoids,
    const std::vector<DimensionSet>& dims, bool segmental_normalization,
    const PassOptions& options, const SketchPlan* sketch) {
  if (medoids.rows() == 0) return Status::InvalidArgument("no medoids");
  if (dims.size() != medoids.rows())
    return Status::InvalidArgument("dimension set count mismatch");
  AssignConsumer consumer;
  consumer.SetSketch(sketch);
  PROCLUS_RETURN_IF_ERROR(consumer.Bind(&medoids, &dims,
                                        segmental_normalization,
                                        /*accumulate_centroids=*/false));
  PROCLUS_RETURN_IF_ERROR(ScanExecutor(options).Run(source, {&consumer}));
  return consumer.TakeLabels();
}

Result<double> EvaluateClustersPass(const PointSource& source,
                                    const std::vector<int>& labels,
                                    const std::vector<DimensionSet>& dims,
                                    const PassOptions& options) {
  if (labels.size() != source.size())
    return Status::InvalidArgument("label count mismatch");
  ScanExecutor executor(options);
  // Scan 1: centroids.
  CentroidConsumer centroids;
  PROCLUS_RETURN_IF_ERROR(centroids.Bind(&labels, dims.size()));
  PROCLUS_RETURN_IF_ERROR(executor.Run(source, {&centroids}));
  // Scan 2: per-dimension absolute deviations from the centroids.
  DeviationConsumer deviation;
  PROCLUS_RETURN_IF_ERROR(deviation.Bind(&labels, &centroids.centroids(),
                                         &centroids.cluster_sizes(), &dims));
  PROCLUS_RETURN_IF_ERROR(executor.Run(source, {&deviation}));
  return deviation.objective();
}

Result<std::vector<int>> RefineAssignPass(
    const PointSource& source, const Matrix& medoids,
    const std::vector<DimensionSet>& dims,
    const std::vector<double>& spheres, bool segmental_normalization,
    bool detect_outliers, const PassOptions& options,
    const SketchPlan* sketch) {
  if (medoids.rows() == 0) return Status::InvalidArgument("no medoids");
  if (dims.size() != medoids.rows() || spheres.size() != medoids.rows())
    return Status::InvalidArgument("per-medoid input count mismatch");
  RefineAssignConsumer consumer;
  consumer.SetSketch(sketch);
  PROCLUS_RETURN_IF_ERROR(consumer.Bind(&medoids, &dims, &spheres,
                                        segmental_normalization,
                                        detect_outliers,
                                        /*accumulate_centroids=*/false));
  PROCLUS_RETURN_IF_ERROR(ScanExecutor(options).Run(source, {&consumer}));
  return consumer.TakeLabels();
}

}  // namespace proclus
