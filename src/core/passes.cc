#include "core/passes.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "distance/metric.h"
#include "distance/segmental.h"
#include "gen/ground_truth.h"

namespace proclus {

namespace {

// Full-space Manhattan segmental distance between two equal-length rows.
inline double FullSegmental(std::span<const double> a,
                            std::span<const double> b) {
  return ManhattanDistance(a, b) / static_cast<double>(a.size());
}

// delta_i = full-space segmental distance from medoid i to its nearest
// other medoid (infinity when k == 1).
std::vector<double> MedoidDeltas(const Matrix& medoids) {
  const size_t k = medoids.rows();
  std::vector<double> delta(k, std::numeric_limits<double>::infinity());
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = i + 1; j < k; ++j) {
      double dist = FullSegmental(medoids.row(i), medoids.row(j));
      if (dist < delta[i]) delta[i] = dist;
      if (dist < delta[j]) delta[j] = dist;
    }
  }
  return delta;
}

// Materialized dimension lists (the hot loops iterate plain indices).
std::vector<std::vector<uint32_t>> DimLists(
    const std::vector<DimensionSet>& dims) {
  std::vector<std::vector<uint32_t>> lists(dims.size());
  for (size_t i = 0; i < dims.size(); ++i) {
    lists[i] = dims[i].ToVector();
    PROCLUS_CHECK(!lists[i].empty());
  }
  return lists;
}

}  // namespace

Status ForEachBlock(const PointSource& source, const PassOptions& options,
                    const BlockVisitor& visit) {
  if (options.block_rows == 0)
    return Status::InvalidArgument("block_rows must be > 0");
  const Dataset* memory = source.InMemory();
  if (memory == nullptr || options.num_threads <= 1) {
    return source.Scan(options.block_rows, visit);
  }
  const size_t d = memory->dims();
  const std::vector<double>& data = memory->matrix().data();
  ParallelBlocks(memory->size(), options.block_rows, options.num_threads,
                 [&](size_t, size_t first, size_t count) {
                   visit(first,
                         std::span<const double>(data.data() + first * d,
                                                 count * d),
                         count);
                 });
  return Status::OK();
}

Result<Matrix> LocalityStatsPass(const PointSource& source,
                                 const Matrix& medoids,
                                 const PassOptions& options) {
  const size_t k = medoids.rows();
  const size_t d = source.dims();
  if (k == 0) return Status::InvalidArgument("no medoids");
  if (medoids.cols() != d)
    return Status::InvalidArgument("medoid dimensionality mismatch");
  std::vector<double> delta = MedoidDeltas(medoids);

  struct Partial {
    std::vector<double> sums;   // k x d
    std::vector<size_t> count;  // k
  };
  const size_t blocks = BlockCount(source.size(), options.block_rows);
  std::vector<Partial> partials(blocks);

  Status status = ForEachBlock(
      source, options,
      [&](size_t first, std::span<const double> data, size_t rows) {
        Partial& partial = partials[first / options.block_rows];
        partial.sums.assign(k * d, 0.0);
        partial.count.assign(k, 0);
        for (size_t r = 0; r < rows; ++r) {
          std::span<const double> point = data.subspan(r * d, d);
          for (size_t i = 0; i < k; ++i) {
            auto medoid = medoids.row(i);
            if (FullSegmental(point, medoid) <= delta[i]) {
              double* sums = partial.sums.data() + i * d;
              for (size_t j = 0; j < d; ++j) {
                double diff = point[j] - medoid[j];
                sums[j] += diff < 0 ? -diff : diff;
              }
              ++partial.count[i];
            }
          }
        }
      });
  PROCLUS_RETURN_IF_ERROR(status);

  Matrix X(k, d);
  std::vector<size_t> count(k, 0);
  for (const Partial& partial : partials) {
    if (partial.sums.empty()) continue;
    for (size_t i = 0; i < k; ++i) {
      for (size_t j = 0; j < d; ++j)
        X(i, j) += partial.sums[i * d + j];
      count[i] += partial.count[i];
    }
  }
  for (size_t i = 0; i < k; ++i) {
    // Every medoid is a data point, so its own locality is non-empty as
    // long as the medoid coordinates came from this source.
    if (count[i] == 0) continue;
    for (size_t j = 0; j < d; ++j)
      X(i, j) /= static_cast<double>(count[i]);
  }
  return X;
}

Result<Matrix> ClusterStatsPass(const PointSource& source,
                                const Matrix& medoids,
                                const std::vector<int>& labels,
                                const PassOptions& options) {
  const size_t k = medoids.rows();
  const size_t d = source.dims();
  if (k == 0) return Status::InvalidArgument("no medoids");
  if (labels.size() != source.size())
    return Status::InvalidArgument("label count mismatch");

  struct Partial {
    std::vector<double> sums;
    std::vector<size_t> count;
  };
  const size_t blocks = BlockCount(source.size(), options.block_rows);
  std::vector<Partial> partials(blocks);

  Status status = ForEachBlock(
      source, options,
      [&](size_t first, std::span<const double> data, size_t rows) {
        Partial& partial = partials[first / options.block_rows];
        partial.sums.assign(k * d, 0.0);
        partial.count.assign(k, 0);
        for (size_t r = 0; r < rows; ++r) {
          int label = labels[first + r];
          if (label == kOutlierLabel) continue;
          size_t i = static_cast<size_t>(label);
          // invariant: labels come from AssignPointsPass, which only emits
          // kOutlierLabel or medoid indices in [0, k).
          PROCLUS_CHECK(i < k);
          std::span<const double> point = data.subspan(r * d, d);
          auto medoid = medoids.row(i);
          double* sums = partial.sums.data() + i * d;
          for (size_t j = 0; j < d; ++j) {
            double diff = point[j] - medoid[j];
            sums[j] += diff < 0 ? -diff : diff;
          }
          ++partial.count[i];
        }
      });
  PROCLUS_RETURN_IF_ERROR(status);

  Matrix X(k, d);
  std::vector<size_t> count(k, 0);
  for (const Partial& partial : partials) {
    if (partial.sums.empty()) continue;
    for (size_t i = 0; i < k; ++i) {
      for (size_t j = 0; j < d; ++j)
        X(i, j) += partial.sums[i * d + j];
      count[i] += partial.count[i];
    }
  }
  for (size_t i = 0; i < k; ++i) {
    if (count[i] == 0) continue;
    for (size_t j = 0; j < d; ++j)
      X(i, j) /= static_cast<double>(count[i]);
  }
  return X;
}

Result<std::vector<int>> AssignPointsPass(
    const PointSource& source, const Matrix& medoids,
    const std::vector<DimensionSet>& dims, bool segmental_normalization,
    const PassOptions& options) {
  const size_t k = medoids.rows();
  const size_t d = source.dims();
  if (k == 0) return Status::InvalidArgument("no medoids");
  if (dims.size() != k)
    return Status::InvalidArgument("dimension set count mismatch");
  std::vector<std::vector<uint32_t>> dim_lists = DimLists(dims);

  std::vector<int> labels(source.size());
  Status status = ForEachBlock(
      source, options,
      [&](size_t first, std::span<const double> data, size_t rows) {
        for (size_t r = 0; r < rows; ++r) {
          std::span<const double> point = data.subspan(r * d, d);
          double best = std::numeric_limits<double>::infinity();
          int best_i = 0;
          for (size_t i = 0; i < k; ++i) {
            double dist =
                segmental_normalization
                    ? ManhattanSegmentalDistance(point, medoids.row(i),
                                                 dim_lists[i])
                    : RestrictedManhattanDistance(point, medoids.row(i),
                                                  dim_lists[i]);
            if (dist < best) {
              best = dist;
              best_i = static_cast<int>(i);
            }
          }
          labels[first + r] = best_i;
        }
      });
  PROCLUS_RETURN_IF_ERROR(status);
  return labels;
}

Result<double> EvaluateClustersPass(const PointSource& source,
                                    const std::vector<int>& labels,
                                    const std::vector<DimensionSet>& dims,
                                    const PassOptions& options) {
  const size_t k = dims.size();
  const size_t d = source.dims();
  if (labels.size() != source.size())
    return Status::InvalidArgument("label count mismatch");

  // Scan 1: centroids.
  struct SumPartial {
    std::vector<double> sums;
    std::vector<size_t> count;
  };
  const size_t blocks = BlockCount(source.size(), options.block_rows);
  std::vector<SumPartial> partials(blocks);
  Status status = ForEachBlock(
      source, options,
      [&](size_t first, std::span<const double> data, size_t rows) {
        SumPartial& partial = partials[first / options.block_rows];
        partial.sums.assign(k * d, 0.0);
        partial.count.assign(k, 0);
        for (size_t r = 0; r < rows; ++r) {
          int label = labels[first + r];
          if (label == kOutlierLabel) continue;
          size_t i = static_cast<size_t>(label);
          // invariant: labels come from AssignPointsPass, which only emits
          // kOutlierLabel or medoid indices in [0, k).
          PROCLUS_CHECK(i < k);
          std::span<const double> point = data.subspan(r * d, d);
          double* sums = partial.sums.data() + i * d;
          for (size_t j = 0; j < d; ++j) sums[j] += point[j];
          ++partial.count[i];
        }
      });
  PROCLUS_RETURN_IF_ERROR(status);

  Matrix centroid(k, d);
  std::vector<size_t> count(k, 0);
  for (const SumPartial& partial : partials) {
    if (partial.sums.empty()) continue;
    for (size_t i = 0; i < k; ++i) {
      for (size_t j = 0; j < d; ++j)
        centroid(i, j) += partial.sums[i * d + j];
      count[i] += partial.count[i];
    }
  }
  for (size_t i = 0; i < k; ++i) {
    if (count[i] == 0) continue;
    for (size_t j = 0; j < d; ++j)
      centroid(i, j) /= static_cast<double>(count[i]);
  }

  // Scan 2: per-dimension absolute deviations from the centroids.
  for (auto& partial : partials) {
    partial.sums.clear();
    partial.count.clear();
  }
  status = ForEachBlock(
      source, options,
      [&](size_t first, std::span<const double> data, size_t rows) {
        SumPartial& partial = partials[first / options.block_rows];
        partial.sums.assign(k * d, 0.0);
        for (size_t r = 0; r < rows; ++r) {
          int label = labels[first + r];
          if (label == kOutlierLabel) continue;
          size_t i = static_cast<size_t>(label);
          std::span<const double> point = data.subspan(r * d, d);
          double* sums = partial.sums.data() + i * d;
          for (size_t j = 0; j < d; ++j) {
            double diff = point[j] - centroid(i, j);
            sums[j] += diff < 0 ? -diff : diff;
          }
        }
      });
  PROCLUS_RETURN_IF_ERROR(status);

  Matrix deviation(k, d);
  for (const SumPartial& partial : partials) {
    if (partial.sums.empty()) continue;
    for (size_t i = 0; i < k; ++i)
      for (size_t j = 0; j < d; ++j)
        deviation(i, j) += partial.sums[i * d + j];
  }

  double weighted = 0.0;
  size_t clustered = 0;
  for (size_t i = 0; i < k; ++i) {
    if (count[i] == 0) continue;
    std::vector<uint32_t> dim_list = dims[i].ToVector();
    // invariant: FindDimensions allocates >= 2 dimensions per medoid.
    PROCLUS_CHECK(!dim_list.empty());
    double w = 0.0;
    for (uint32_t j : dim_list)
      w += deviation(i, j) / static_cast<double>(count[i]);
    w /= static_cast<double>(dim_list.size());
    weighted += w * static_cast<double>(count[i]);
    clustered += count[i];
  }
  return clustered == 0 ? 0.0
                        : weighted / static_cast<double>(clustered);
}

Result<std::vector<int>> RefineAssignPass(
    const PointSource& source, const Matrix& medoids,
    const std::vector<DimensionSet>& dims,
    const std::vector<double>& spheres, bool segmental_normalization,
    bool detect_outliers, const PassOptions& options) {
  const size_t k = medoids.rows();
  const size_t d = source.dims();
  if (k == 0) return Status::InvalidArgument("no medoids");
  if (dims.size() != k || spheres.size() != k)
    return Status::InvalidArgument("per-medoid input count mismatch");
  std::vector<std::vector<uint32_t>> dim_lists = DimLists(dims);

  std::vector<int> labels(source.size());
  Status status = ForEachBlock(
      source, options,
      [&](size_t first, std::span<const double> data, size_t rows) {
        for (size_t r = 0; r < rows; ++r) {
          std::span<const double> point = data.subspan(r * d, d);
          double best = std::numeric_limits<double>::infinity();
          int best_i = 0;
          bool inside_any = false;
          for (size_t i = 0; i < k; ++i) {
            double dist =
                segmental_normalization
                    ? ManhattanSegmentalDistance(point, medoids.row(i),
                                                 dim_lists[i])
                    : RestrictedManhattanDistance(point, medoids.row(i),
                                                  dim_lists[i]);
            if (dist <= spheres[i]) inside_any = true;
            if (dist < best) {
              best = dist;
              best_i = static_cast<int>(i);
            }
          }
          labels[first + r] =
              (detect_outliers && !inside_any) ? kOutlierLabel : best_i;
        }
      });
  PROCLUS_RETURN_IF_ERROR(status);
  return labels;
}

}  // namespace proclus
