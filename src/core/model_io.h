// Persistence for fitted models: a small, versioned, human-readable text
// format holding everything ClassifyPoints needs (medoid coordinates,
// dimension subsets, spheres of influence, objective) — deliberately NOT
// the training labels, which belong to the training data, can be large,
// and are reproducible via ClassifyPoints on the training set.

#ifndef PROCLUS_CORE_MODEL_IO_H_
#define PROCLUS_CORE_MODEL_IO_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "core/model.h"

namespace proclus {

/// Writes `model` (without labels) to a stream.
Status SaveModel(const ProjectedClustering& model, std::ostream& out);

/// Writes `model` to the file at `path`.
Status SaveModelFile(const ProjectedClustering& model,
                     const std::string& path);

/// Reads a model previously written with SaveModel. The result has empty
/// `labels` (re-derive them with ClassifyPoints if needed).
Result<ProjectedClustering> LoadModel(std::istream& in);

/// Reads a model from the file at `path`.
Result<ProjectedClustering> LoadModelFile(const std::string& path);

}  // namespace proclus

#endif  // PROCLUS_CORE_MODEL_IO_H_
