// Persistence for fitted models and mid-run checkpoints.
//
// Models: a small, versioned, human-readable text format holding everything
// ClassifyPoints needs (medoid coordinates, dimension subsets, spheres of
// influence, objective) — deliberately NOT the training labels, which belong
// to the training data, can be large, and are reproducible via
// ClassifyPoints on the training set.
//
// Checkpoints: a little-endian binary format ("PCKP", version 1) capturing
// the full mid-climb state of a PROCLUS run — restart index, iteration
// counters, current/best medoid sets, objective, labels, dimension sets,
// candidate pool, and the complete RNG state — terminated by an XXH64
// integrity trailer over everything before it. A fingerprint field binds
// the checkpoint to the run configuration (parameters + data shape) that
// wrote it. Writes are atomic (tmp file + rename), so a crash mid-write
// leaves the previous checkpoint intact; truncated or bit-flipped files
// fail the trailer check and are rejected with a Status, never consumed.

#ifndef PROCLUS_CORE_MODEL_IO_H_
#define PROCLUS_CORE_MODEL_IO_H_

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/model.h"

namespace proclus {

/// Writes `model` (without labels) to a stream.
Status SaveModel(const ProjectedClustering& model, std::ostream& out);

/// Writes `model` to the file at `path`.
Status SaveModelFile(const ProjectedClustering& model,
                     const std::string& path);

/// Reads a model previously written with SaveModel. The result has empty
/// `labels` (re-derive them with ClassifyPoints if needed).
Result<ProjectedClustering> LoadModel(std::istream& in);

/// Reads a model from the file at `path`.
Result<ProjectedClustering> LoadModelFile(const std::string& path);

/// Serializable mid-climb state of a PROCLUS run. The climb_* fields hold
/// the in-progress restart (captured at the top of a hill-climbing
/// iteration); the best_* fields hold the accumulated winner of the
/// completed restarts. Dimension sets are stored as sorted index lists
/// over a `num_dims`-dimensional space.
struct ProclusCheckpoint {
  /// Binds the checkpoint to the (parameters, data shape) that wrote it.
  uint64_t fingerprint = 0;
  /// Dimensionality d of the data (capacity of every dimension set).
  uint64_t num_dims = 0;
  /// Index of the restart in progress.
  uint64_t restart = 0;
  /// Full RNG state at the capture point.
  RngState rng;
  /// Global point indices of the candidate medoid pool (phase 1 output).
  std::vector<uint64_t> candidates;

  // In-progress restart (loop-top state of the hill climb).
  std::vector<uint64_t> climb_current;
  double climb_objective = std::numeric_limits<double>::infinity();
  std::vector<uint64_t> climb_slots;
  std::vector<std::vector<uint32_t>> climb_dims;
  std::vector<int32_t> climb_labels;
  uint64_t climb_iterations = 0;
  uint64_t climb_improvements = 0;
  std::vector<uint64_t> climb_bad;
  uint64_t since_improvement = 0;

  // Best across completed restarts.
  double best_objective = std::numeric_limits<double>::infinity();
  std::vector<uint64_t> best_slots;
  std::vector<std::vector<uint32_t>> best_dims;
  std::vector<int32_t> best_labels;
  uint64_t total_iterations = 0;
  uint64_t total_improvements = 0;
};

/// Serializes `checkpoint` (binary "PCKP" v1 + XXH64 trailer) to a stream.
Status SaveCheckpoint(const ProclusCheckpoint& checkpoint, std::ostream& out);

/// Atomically replaces the file at `path` with `checkpoint`: the bytes are
/// written to `path + ".tmp"` and renamed over `path`, so a crash mid-write
/// never destroys the previous checkpoint.
Status SaveCheckpointFile(const ProclusCheckpoint& checkpoint,
                          const std::string& path);

/// Reads a checkpoint written by SaveCheckpoint. Truncated input, a bad
/// magic/version, or an XXH64 trailer mismatch yield Corruption/DataLoss —
/// a damaged checkpoint is never partially consumed.
Result<ProclusCheckpoint> LoadCheckpoint(std::istream& in);

/// Reads a checkpoint from the file at `path`. A missing/unopenable file
/// yields NotFound (callers treat that as "start fresh").
Result<ProclusCheckpoint> LoadCheckpointFile(const std::string& path);

}  // namespace proclus

#endif  // PROCLUS_CORE_MODEL_IO_H_
