// Result types of the PROCLUS algorithm: a (k+1)-way partition of the
// points (k clusters + outliers) plus a dimension subset per cluster.

#ifndef PROCLUS_CORE_MODEL_H_
#define PROCLUS_CORE_MODEL_H_

#include <cstdint>
#include <vector>

#include "common/dimension_set.h"
#include "common/matrix.h"
#include "common/run_stats.h"
#include "data/dataset.h"
#include "gen/ground_truth.h"

namespace proclus {

/// Output of a projected clustering run. Besides the partition itself it
/// carries everything needed to act as a *model*: medoid coordinates,
/// dimension subsets, and spheres of influence, so new points can be
/// classified without the training data (see core/classify.h).
struct ProjectedClustering {
  /// Per-point cluster id in [0, k), or kOutlierLabel for outliers.
  std::vector<int> labels;
  /// Point index of each cluster's medoid.
  std::vector<size_t> medoids;
  /// Coordinates of the medoids (k rows), so the model is self-contained.
  Matrix medoid_coords;
  /// Dimension subset D_i associated with each cluster.
  std::vector<DimensionSet> dimensions;
  /// Sphere of influence of each medoid (segmental distance to its
  /// nearest fellow medoid on its own dimensions); empty when the
  /// refinement phase was disabled. Used for outlier detection when
  /// classifying new points.
  std::vector<double> spheres;
  /// Final value of the paper's objective (average Manhattan segmental
  /// distance from points to their cluster centroid; lower is better).
  double objective = 0.0;
  /// Hill-climbing iterations performed in the iterative phase.
  size_t iterations = 0;
  /// Medoid-set replacements that improved the objective.
  size_t improvements = 0;
  /// Data-movement counters and per-phase wall time of the run that
  /// produced this model (scans issued, rows visited, bytes read from
  /// disk-backed sources, distance evaluations).
  RunStats stats;

  /// Number of clusters.
  size_t num_clusters() const { return medoids.size(); }

  /// Point indices per cluster (index k holds the outliers).
  std::vector<std::vector<size_t>> ClusterIndices() const {
    std::vector<std::vector<size_t>> out(num_clusters() + 1);
    for (size_t p = 0; p < labels.size(); ++p) {
      int label = labels[p];
      if (label == kOutlierLabel)
        out[num_clusters()].push_back(p);
      else
        out[static_cast<size_t>(label)].push_back(p);
    }
    return out;
  }

  /// Number of points labeled as outliers.
  size_t NumOutliers() const {
    size_t n = 0;
    for (int label : labels)
      if (label == kOutlierLabel) ++n;
    return n;
  }
};

}  // namespace proclus

#endif  // PROCLUS_CORE_MODEL_H_
