#include "core/model_io.h"

#include <fstream>
#include <iomanip>
#include <sstream>

namespace proclus {

namespace {
constexpr const char* kHeader = "PROCLUS-MODEL";
constexpr int kVersion = 1;
}  // namespace

Status SaveModel(const ProjectedClustering& model, std::ostream& out) {
  const size_t k = model.num_clusters();
  const size_t d = model.medoid_coords.cols();
  if (model.medoid_coords.rows() != k)
    return Status::InvalidArgument(
        "model has no medoid coordinates; cannot be saved as a "
        "self-contained model");
  out << kHeader << ' ' << kVersion << '\n';
  out << "k " << k << " d " << d << '\n';
  out << std::setprecision(17);
  out << "objective " << model.objective << '\n';
  out << "iterations " << model.iterations << " improvements "
      << model.improvements << '\n';
  for (size_t i = 0; i < k; ++i) {
    out << "medoid " << model.medoids[i];
    for (size_t j = 0; j < d; ++j) out << ' ' << model.medoid_coords(i, j);
    out << '\n';
  }
  for (size_t i = 0; i < k; ++i) {
    std::vector<uint32_t> dims = model.dimensions[i].ToVector();
    out << "dims " << dims.size();
    for (uint32_t dim : dims) out << ' ' << dim;
    out << '\n';
  }
  if (model.spheres.empty()) {
    out << "spheres none\n";
  } else {
    out << "spheres " << model.spheres.size();
    for (double sphere : model.spheres) out << ' ' << sphere;
    out << '\n';
  }
  if (!out) return Status::IOError("model write failed");
  return Status::OK();
}

Status SaveModelFile(const ProjectedClustering& model,
                     const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  return SaveModel(model, out);
}

Result<ProjectedClustering> LoadModel(std::istream& in) {
  std::string header;
  int version = 0;
  in >> header >> version;
  if (!in || header != kHeader)
    return Status::Corruption("not a PROCLUS model file");
  if (version != kVersion)
    return Status::Corruption("unsupported model version " +
                              std::to_string(version));
  std::string tag;
  size_t k = 0, d = 0;
  in >> tag >> k;
  if (!in || tag != "k") return Status::Corruption("expected 'k'");
  in >> tag >> d;
  if (!in || tag != "d") return Status::Corruption("expected 'd'");
  if (k == 0 || d == 0) return Status::Corruption("degenerate model shape");

  ProjectedClustering model;
  in >> tag >> model.objective;
  if (!in || tag != "objective")
    return Status::Corruption("expected 'objective'");
  in >> tag >> model.iterations;
  if (!in || tag != "iterations")
    return Status::Corruption("expected 'iterations'");
  in >> tag >> model.improvements;
  if (!in || tag != "improvements")
    return Status::Corruption("expected 'improvements'");

  model.medoids.resize(k);
  model.medoid_coords = Matrix(k, d);
  for (size_t i = 0; i < k; ++i) {
    in >> tag >> model.medoids[i];
    if (!in || tag != "medoid")
      return Status::Corruption("expected 'medoid' row " +
                                std::to_string(i));
    for (size_t j = 0; j < d; ++j) in >> model.medoid_coords(i, j);
    if (!in) return Status::Corruption("truncated medoid coordinates");
  }
  model.dimensions.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    size_t count = 0;
    in >> tag >> count;
    if (!in || tag != "dims")
      return Status::Corruption("expected 'dims' row " + std::to_string(i));
    DimensionSet set(d);
    for (size_t c = 0; c < count; ++c) {
      uint32_t dim;
      in >> dim;
      if (!in || dim >= d)
        return Status::Corruption("bad dimension index in model");
      set.Add(dim);
    }
    if (set.empty())
      return Status::Corruption("empty dimension set in model");
    model.dimensions.push_back(std::move(set));
  }
  in >> tag;
  if (!in || tag != "spheres")
    return Status::Corruption("expected 'spheres'");
  std::string count_token;
  in >> count_token;
  if (count_token != "none") {
    size_t count = 0;
    std::istringstream parse(count_token);
    parse >> count;
    if (parse.fail() || count != k)
      return Status::Corruption("bad sphere count");
    model.spheres.resize(k);
    for (size_t i = 0; i < k; ++i) in >> model.spheres[i];
    if (!in) return Status::Corruption("truncated spheres");
  }
  return model;
}

Result<ProjectedClustering> LoadModelFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  return LoadModel(in);
}

}  // namespace proclus
