#include "core/model_io.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/hash.h"

namespace proclus {

namespace {
constexpr const char* kHeader = "PROCLUS-MODEL";
constexpr int kVersion = 1;
}  // namespace

Status SaveModel(const ProjectedClustering& model, std::ostream& out) {
  const size_t k = model.num_clusters();
  const size_t d = model.medoid_coords.cols();
  if (model.medoid_coords.rows() != k)
    return Status::InvalidArgument(
        "model has no medoid coordinates; cannot be saved as a "
        "self-contained model");
  out << kHeader << ' ' << kVersion << '\n';
  out << "k " << k << " d " << d << '\n';
  out << std::setprecision(17);
  out << "objective " << model.objective << '\n';
  out << "iterations " << model.iterations << " improvements "
      << model.improvements << '\n';
  for (size_t i = 0; i < k; ++i) {
    out << "medoid " << model.medoids[i];
    for (size_t j = 0; j < d; ++j) out << ' ' << model.medoid_coords(i, j);
    out << '\n';
  }
  for (size_t i = 0; i < k; ++i) {
    std::vector<uint32_t> dims = model.dimensions[i].ToVector();
    out << "dims " << dims.size();
    for (uint32_t dim : dims) out << ' ' << dim;
    out << '\n';
  }
  if (model.spheres.empty()) {
    out << "spheres none\n";
  } else {
    out << "spheres " << model.spheres.size();
    for (double sphere : model.spheres) out << ' ' << sphere;
    out << '\n';
  }
  if (!out) return Status::IOError("model write failed");
  return Status::OK();
}

Status SaveModelFile(const ProjectedClustering& model,
                     const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  return SaveModel(model, out);
}

Result<ProjectedClustering> LoadModel(std::istream& in) {
  std::string header;
  int version = 0;
  in >> header >> version;
  if (!in || header != kHeader)
    return Status::Corruption("not a PROCLUS model file");
  if (version != kVersion)
    return Status::Corruption("unsupported model version " +
                              std::to_string(version));
  std::string tag;
  size_t k = 0, d = 0;
  in >> tag >> k;
  if (!in || tag != "k") return Status::Corruption("expected 'k'");
  in >> tag >> d;
  if (!in || tag != "d") return Status::Corruption("expected 'd'");
  if (k == 0 || d == 0) return Status::Corruption("degenerate model shape");

  ProjectedClustering model;
  in >> tag >> model.objective;
  if (!in || tag != "objective")
    return Status::Corruption("expected 'objective'");
  in >> tag >> model.iterations;
  if (!in || tag != "iterations")
    return Status::Corruption("expected 'iterations'");
  in >> tag >> model.improvements;
  if (!in || tag != "improvements")
    return Status::Corruption("expected 'improvements'");

  model.medoids.resize(k);
  model.medoid_coords = Matrix(k, d);
  for (size_t i = 0; i < k; ++i) {
    in >> tag >> model.medoids[i];
    if (!in || tag != "medoid")
      return Status::Corruption("expected 'medoid' row " +
                                std::to_string(i));
    for (size_t j = 0; j < d; ++j) in >> model.medoid_coords(i, j);
    if (!in) return Status::Corruption("truncated medoid coordinates");
  }
  model.dimensions.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    size_t count = 0;
    in >> tag >> count;
    if (!in || tag != "dims")
      return Status::Corruption("expected 'dims' row " + std::to_string(i));
    DimensionSet set(d);
    for (size_t c = 0; c < count; ++c) {
      uint32_t dim;
      in >> dim;
      if (!in || dim >= d)
        return Status::Corruption("bad dimension index in model");
      set.Add(dim);
    }
    if (set.empty())
      return Status::Corruption("empty dimension set in model");
    model.dimensions.push_back(std::move(set));
  }
  in >> tag;
  if (!in || tag != "spheres")
    return Status::Corruption("expected 'spheres'");
  std::string count_token;
  in >> count_token;
  if (count_token != "none") {
    size_t count = 0;
    std::istringstream parse(count_token);
    parse >> count;
    if (parse.fail() || count != k)
      return Status::Corruption("bad sphere count");
    model.spheres.resize(k);
    for (size_t i = 0; i < k; ++i) in >> model.spheres[i];
    if (!in) return Status::Corruption("truncated spheres");
  }
  return model;
}

Result<ProjectedClustering> LoadModelFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  return LoadModel(in);
}

// ---------- Checkpoints ----------

namespace {

constexpr char kCheckpointMagic[4] = {'P', 'C', 'K', 'P'};
constexpr uint32_t kCheckpointVersion = 1;

template <typename T>
void PutRaw(std::string& out, const T& value) {
  out.append(reinterpret_cast<const char*>(&value), sizeof(T));
}

void PutU64Vector(std::string& out, const std::vector<uint64_t>& v) {
  PutRaw(out, static_cast<uint64_t>(v.size()));
  if (!v.empty())
    out.append(reinterpret_cast<const char*>(v.data()),
               v.size() * sizeof(uint64_t));
}

void PutI32Vector(std::string& out, const std::vector<int32_t>& v) {
  PutRaw(out, static_cast<uint64_t>(v.size()));
  if (!v.empty())
    out.append(reinterpret_cast<const char*>(v.data()),
               v.size() * sizeof(int32_t));
}

void PutDimLists(std::string& out,
                 const std::vector<std::vector<uint32_t>>& lists) {
  PutRaw(out, static_cast<uint64_t>(lists.size()));
  for (const auto& list : lists) {
    PutRaw(out, static_cast<uint64_t>(list.size()));
    if (!list.empty())
      out.append(reinterpret_cast<const char*>(list.data()),
                 list.size() * sizeof(uint32_t));
  }
}

// Bounds-checked reader over the in-memory checkpoint payload: every Read
// validates against the remaining bytes, so a hostile length field can
// never drive an out-of-bounds access or an allocation beyond the bytes
// actually present.
class Cursor {
 public:
  Cursor(const char* data, size_t len) : p_(data), len_(len) {}

  size_t remaining() const { return len_ - off_; }

  bool ReadBytes(void* dest, size_t n) {
    if (n > remaining()) return false;
    std::memcpy(dest, p_ + off_, n);
    off_ += n;
    return true;
  }

  template <typename T>
  bool Read(T* value) {
    return ReadBytes(value, sizeof(T));
  }

  template <typename T>
  bool ReadVector(std::vector<T>* out) {
    uint64_t count = 0;
    if (!Read(&count)) return false;
    if (count > remaining() / sizeof(T)) return false;
    out->resize(static_cast<size_t>(count));
    return count == 0 ||
           ReadBytes(out->data(), static_cast<size_t>(count) * sizeof(T));
  }

  bool ReadDimLists(std::vector<std::vector<uint32_t>>* out) {
    uint64_t count = 0;
    if (!Read(&count)) return false;
    // Each list costs at least its 8-byte count.
    if (count > remaining() / sizeof(uint64_t)) return false;
    out->resize(static_cast<size_t>(count));
    for (auto& list : *out)
      if (!ReadVector(&list)) return false;
    return true;
  }

 private:
  const char* p_;
  size_t len_;
  size_t off_ = 0;
};

std::string SerializeCheckpoint(const ProclusCheckpoint& ck) {
  std::string out;
  out.append(kCheckpointMagic, sizeof(kCheckpointMagic));
  PutRaw(out, kCheckpointVersion);
  PutRaw(out, ck.fingerprint);
  PutRaw(out, ck.num_dims);
  PutRaw(out, ck.restart);
  for (uint64_t word : ck.rng.state) PutRaw(out, word);
  PutRaw(out, ck.rng.normal_spare);
  PutRaw(out, static_cast<uint8_t>(ck.rng.has_normal_spare ? 1 : 0));
  PutU64Vector(out, ck.candidates);
  PutU64Vector(out, ck.climb_current);
  PutRaw(out, ck.climb_objective);
  PutU64Vector(out, ck.climb_slots);
  PutDimLists(out, ck.climb_dims);
  PutI32Vector(out, ck.climb_labels);
  PutRaw(out, ck.climb_iterations);
  PutRaw(out, ck.climb_improvements);
  PutU64Vector(out, ck.climb_bad);
  PutRaw(out, ck.since_improvement);
  PutRaw(out, ck.best_objective);
  PutU64Vector(out, ck.best_slots);
  PutDimLists(out, ck.best_dims);
  PutI32Vector(out, ck.best_labels);
  PutRaw(out, ck.total_iterations);
  PutRaw(out, ck.total_improvements);
  PutRaw(out, Xxh64::Hash(out.data(), out.size()));
  return out;
}

}  // namespace

Status SaveCheckpoint(const ProclusCheckpoint& checkpoint,
                      std::ostream& out) {
  const std::string bytes = SerializeCheckpoint(checkpoint);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) return Status::IOError("checkpoint write failed");
  return Status::OK();
}

Status SaveCheckpointFile(const ProclusCheckpoint& checkpoint,
                          const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out)
      return Status::IOError("cannot open '" + tmp + "' for writing");
    Status status = SaveCheckpoint(checkpoint, out);
    if (!status.ok()) {
      out.close();
      std::remove(tmp.c_str());
      return status;
    }
    out.flush();
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      return Status::IOError("checkpoint flush to '" + tmp + "' failed");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename '" + tmp + "' to '" + path + "'");
  }
  return Status::OK();
}

Result<ProclusCheckpoint> LoadCheckpoint(std::istream& in) {
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  // Smallest valid checkpoint: magic + version + trailer alone exceed 16.
  if (bytes.size() < sizeof(kCheckpointMagic) + sizeof(uint32_t) +
                         sizeof(uint64_t))
    return Status::Corruption("checkpoint truncated: " +
                              std::to_string(bytes.size()) + " bytes");
  if (std::memcmp(bytes.data(), kCheckpointMagic,
                  sizeof(kCheckpointMagic)) != 0)
    return Status::Corruption("not a PROCLUS checkpoint (bad magic)");

  // Verify the trailer before believing any field.
  const size_t body = bytes.size() - sizeof(uint64_t);
  uint64_t stored = 0;
  std::memcpy(&stored, bytes.data() + body, sizeof(stored));
  const uint64_t computed = Xxh64::Hash(bytes.data(), body);
  if (stored != computed)
    return Status::DataLoss(
        "checkpoint integrity trailer mismatch: stored " +
        std::to_string(stored) + ", computed " + std::to_string(computed));

  Cursor cur(bytes.data() + sizeof(kCheckpointMagic),
             body - sizeof(kCheckpointMagic));
  uint32_t version = 0;
  if (!cur.Read(&version))
    return Status::Corruption("checkpoint truncated in header");
  if (version != kCheckpointVersion)
    return Status::Corruption("unsupported checkpoint version " +
                              std::to_string(version));
  ProclusCheckpoint ck;
  uint8_t has_spare = 0;
  bool ok = cur.Read(&ck.fingerprint) && cur.Read(&ck.num_dims) &&
            cur.Read(&ck.restart);
  for (uint64_t& word : ck.rng.state) ok = ok && cur.Read(&word);
  ok = ok && cur.Read(&ck.rng.normal_spare) && cur.Read(&has_spare) &&
       cur.ReadVector(&ck.candidates) && cur.ReadVector(&ck.climb_current) &&
       cur.Read(&ck.climb_objective) && cur.ReadVector(&ck.climb_slots) &&
       cur.ReadDimLists(&ck.climb_dims) &&
       cur.ReadVector(&ck.climb_labels) && cur.Read(&ck.climb_iterations) &&
       cur.Read(&ck.climb_improvements) && cur.ReadVector(&ck.climb_bad) &&
       cur.Read(&ck.since_improvement) && cur.Read(&ck.best_objective) &&
       cur.ReadVector(&ck.best_slots) && cur.ReadDimLists(&ck.best_dims) &&
       cur.ReadVector(&ck.best_labels) && cur.Read(&ck.total_iterations) &&
       cur.Read(&ck.total_improvements);
  if (!ok) return Status::Corruption("checkpoint truncated in body");
  if (cur.remaining() != 0)
    return Status::Corruption("checkpoint has " +
                              std::to_string(cur.remaining()) +
                              " trailing bytes");
  ck.rng.has_normal_spare = has_spare != 0;
  return ck;
}

Result<ProclusCheckpoint> LoadCheckpointFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    return Status::NotFound("cannot open checkpoint '" + path + "'");
  return LoadCheckpoint(in);
}

}  // namespace proclus
