#include "core/assign.h"

#include "common/check.h"
#include "core/passes.h"
#include "data/point_source.h"

namespace proclus {

std::vector<int> AssignPoints(const Dataset& dataset,
                              const std::vector<size_t>& medoids,
                              const std::vector<DimensionSet>& dims,
                              bool segmental_normalization) {
  MemorySource source(dataset);
  auto coords = source.Fetch(medoids);
  PROCLUS_CHECK(coords.ok());
  auto labels =
      AssignPointsPass(source, *coords, dims, segmental_normalization);
  PROCLUS_CHECK(labels.ok());
  return std::move(labels).value();
}

double EvaluateClusters(const Dataset& dataset, const std::vector<int>& labels,
                        const std::vector<DimensionSet>& dims) {
  MemorySource source(dataset);
  auto objective = EvaluateClustersPass(source, labels, dims);
  PROCLUS_CHECK(objective.ok());
  return *objective;
}

}  // namespace proclus
