// Classification of new points against a fitted projected clustering.
//
// A ProjectedClustering carries medoid coordinates, per-cluster
// dimension subsets, and spheres of influence — enough to label unseen
// points exactly the way the refinement phase labeled the training
// points: nearest medoid under the Manhattan segmental distance on that
// medoid's dimensions, with points outside every sphere of influence
// flagged as outliers. This is the "classification" application the
// paper motivates (Section 1: trend analysis and classification need a
// partition with interpretable per-segment attributes).

#ifndef PROCLUS_CORE_CLASSIFY_H_
#define PROCLUS_CORE_CLASSIFY_H_

#include <vector>

#include "common/status.h"
#include "core/model.h"
#include "core/passes.h"
#include "data/point_source.h"

namespace proclus {

/// Options for classifying new points.
struct ClassifyOptions {
  /// Flag points outside every sphere of influence as outliers. Ignored
  /// (treated as false) when the model has no spheres (refine=false).
  bool detect_outliers = true;
  /// Use the paper's |D|-normalized segmental distance (must match how
  /// the model was fit).
  bool segmental_normalization = true;
  /// Pass execution (threads / block size).
  PassOptions pass;
};

/// Labels every point of `source` against `model`. The source's
/// dimensionality must match the model's. Returns per-point cluster ids
/// (kOutlierLabel for detected outliers).
Result<std::vector<int>> ClassifyPoints(const ProjectedClustering& model,
                                        const PointSource& source,
                                        const ClassifyOptions& options = {});

/// Convenience overload for an in-memory dataset.
Result<std::vector<int>> ClassifyPoints(const ProjectedClustering& model,
                                        const Dataset& dataset,
                                        const ClassifyOptions& options = {});

/// Labels a single point. Requires point.size() == model dimensionality.
Result<int> ClassifyPoint(const ProjectedClustering& model,
                          std::span<const double> point,
                          const ClassifyOptions& options = {});

}  // namespace proclus

#endif  // PROCLUS_CORE_CLASSIFY_H_
