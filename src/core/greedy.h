// Gonzalez's farthest-first greedy (Figure 3 of the paper; Gonzalez 1985).
//
// Starting from one random point, repeatedly adds the candidate whose
// distance to the nearest already-chosen point is maximal. On well
// separated full-dimensional clusters this returns a piercing set; PROCLUS
// runs it on a small random sample so that the outliers it is attracted to
// are mostly absent.

#ifndef PROCLUS_CORE_GREEDY_H_
#define PROCLUS_CORE_GREEDY_H_

#include <vector>

#include "common/rng.h"
#include "data/dataset.h"
#include "distance/metric.h"

namespace proclus {

/// Picks `count` points from `candidates` (point indices into `dataset`)
/// via farthest-first traversal under `metric`. The first pick is uniform
/// random from `candidates`. Returns min(count, |candidates|) distinct
/// point indices. Requires candidates non-empty when count > 0.
std::vector<size_t> GreedyPick(const Dataset& dataset,
                               const std::vector<size_t>& candidates,
                               size_t count, MetricKind metric, Rng& rng);

}  // namespace proclus

#endif  // PROCLUS_CORE_GREEDY_H_
