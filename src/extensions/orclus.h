// ORCLUS (Aggarwal & Yu, SIGMOD 2000): generalized projected clustering
// with arbitrarily ORIENTED subspaces — the follow-up work that removes
// PROCLUS's axis-parallel restriction, implemented here as the library's
// future-work extension (see bench/limitation_rotation for the failure
// mode it addresses).
//
// Where PROCLUS associates each cluster with a subset of the coordinate
// axes, ORCLUS associates it with an arbitrary orthonormal basis: the
// eigenvectors of the cluster's covariance matrix with the SMALLEST
// eigenvalues — the directions in which the cluster is tight. The
// algorithm is agglomerative-iterative:
//
//   * start from k0 >> k random seeds with full-dimensional subspaces;
//   * alternate (1) assignment of points to the seed minimizing the
//     projected distance in the seed's subspace, (2) recomputation of
//     centroids and subspaces from the assigned points, and (3) merging
//     of the cluster pairs whose union has the least projected energy,
//   * while the cluster count decays toward k (factor alpha) and the
//     subspace dimensionality decays toward l (factor beta, chosen so
//     both targets are reached together).
//
// The projected energy of a cluster in its own s-dimensional subspace
// equals the sum of the s smallest eigenvalues of its covariance, which
// lets merge costs be computed from sufficient statistics (counts,
// means, covariances) without rescanning points.

#ifndef PROCLUS_EXTENSIONS_ORCLUS_H_
#define PROCLUS_EXTENSIONS_ORCLUS_H_

#include <cstdint>
#include <vector>

#include "common/matrix.h"
#include "common/status.h"
#include "data/dataset.h"

namespace proclus {

/// ORCLUS parameters.
struct OrclusParams {
  /// Final number of clusters k.
  size_t num_clusters = 5;
  /// Final subspace dimensionality l (per cluster, all equal).
  size_t subspace_dims = 4;
  /// Initial seed count k0 (0 = 15 * num_clusters, the original paper's
  /// recommendation; capped by N). Small k0 degrades accuracy sharply —
  /// the agglomeration needs enough seeds to pierce every cluster
  /// several times over.
  size_t initial_seeds = 0;
  /// Cluster-count decay per iteration (paper: 0.5).
  double alpha = 0.5;
  /// Seed for the deterministic run.
  uint64_t seed = 1;

  Status Validate(size_t num_points, size_t dims) const;
};

/// ORCLUS output.
struct OrclusResult {
  /// Per-point cluster id in [0, k).
  std::vector<int> labels;
  /// Cluster centroids (k x d).
  Matrix centroids;
  /// Per-cluster orthonormal subspace basis (l rows x d columns each):
  /// the tight directions the cluster is defined by.
  std::vector<Matrix> subspaces;
  /// Average projected distance of points to their centroid in their
  /// cluster's subspace (lower is better).
  double objective = 0.0;
  /// Outer iterations performed.
  size_t iterations = 0;
};

/// Runs ORCLUS on an in-memory dataset. Deterministic for a fixed seed.
Result<OrclusResult> RunOrclus(const Dataset& dataset,
                               const OrclusParams& params);

/// Distance from `point` to `center` within the subspace spanned by the
/// rows of `basis` (orthonormal, s x d): the L2 norm of the projection
/// of (point - center) onto the basis. Exposed for testing.
double ProjectedDistance(std::span<const double> point,
                         std::span<const double> center,
                         const Matrix& basis);

}  // namespace proclus

#endif  // PROCLUS_EXTENSIONS_ORCLUS_H_
