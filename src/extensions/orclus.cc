#include "extensions/orclus.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/check.h"
#include "common/eigen.h"
#include "common/rng.h"

namespace proclus {

Status OrclusParams::Validate(size_t num_points, size_t dims) const {
  if (num_clusters == 0)
    return Status::InvalidArgument("num_clusters must be >= 1");
  if (num_points < num_clusters)
    return Status::InvalidArgument("fewer points than clusters");
  if (subspace_dims == 0 || subspace_dims > dims)
    return Status::InvalidArgument("subspace_dims must be in [1, d]");
  if (alpha <= 0.0 || alpha >= 1.0)
    return Status::InvalidArgument("alpha must be in (0, 1)");
  if (initial_seeds != 0 && initial_seeds < num_clusters)
    return Status::InvalidArgument("initial_seeds must be >= num_clusters");
  return Status::OK();
}

double ProjectedDistance(std::span<const double> point,
                         std::span<const double> center,
                         const Matrix& basis) {
  PROCLUS_DCHECK(point.size() == center.size());
  PROCLUS_DCHECK(basis.cols() == point.size());
  double sum = 0.0;
  for (size_t e = 0; e < basis.rows(); ++e) {
    auto axis = basis.row(e);
    double dot = 0.0;
    for (size_t j = 0; j < point.size(); ++j)
      dot += (point[j] - center[j]) * axis[j];
    sum += dot * dot;
  }
  return std::sqrt(sum);
}

namespace {

// Per-cluster sufficient statistics: count, mean, covariance (around the
// mean), plus the current basis of tight directions.
struct ClusterState {
  size_t count = 0;
  std::vector<double> mean;
  Matrix covariance;  // d x d.
  Matrix basis;       // s x d (s = current subspace dimensionality).
};

// Second-moment matrix E[x x^T] from mean/covariance.
Matrix SecondMoment(const ClusterState& cluster) {
  const size_t d = cluster.mean.size();
  Matrix moment = cluster.covariance;
  for (size_t i = 0; i < d; ++i)
    for (size_t j = 0; j < d; ++j)
      moment(i, j) += cluster.mean[i] * cluster.mean[j];
  return moment;
}

// Covariance of the union of two clusters from their statistics.
Matrix UnionCovariance(const ClusterState& a, const ClusterState& b,
                       std::vector<double>* union_mean) {
  const size_t d = a.mean.size();
  const double na = static_cast<double>(a.count);
  const double nb = static_cast<double>(b.count);
  const double n = na + nb;
  union_mean->resize(d);
  for (size_t j = 0; j < d; ++j)
    (*union_mean)[j] = (na * a.mean[j] + nb * b.mean[j]) / n;
  Matrix ma = SecondMoment(a);
  Matrix mb = SecondMoment(b);
  Matrix cov(d, d);
  for (size_t i = 0; i < d; ++i)
    for (size_t j = 0; j < d; ++j)
      cov(i, j) = (na * ma(i, j) + nb * mb(i, j)) / n -
                  (*union_mean)[i] * (*union_mean)[j];
  return cov;
}

// Projected energy of a covariance in its own best s-dim tight subspace:
// the sum of the s smallest eigenvalues (clamped at 0 for numeric noise).
double ProjectedEnergy(const Matrix& covariance, size_t s) {
  auto eigen = JacobiEigen(covariance, /*symmetry_tolerance=*/1e-6);
  PROCLUS_CHECK(eigen.ok());
  double energy = 0.0;
  for (size_t e = 0; e < s && e < eigen->values.size(); ++e)
    energy += std::max(eigen->values[e], 0.0);
  return energy;
}

// The s smallest-eigenvalue eigenvectors of a covariance.
Matrix TightBasis(const Matrix& covariance, size_t s) {
  auto eigen = JacobiEigen(covariance, /*symmetry_tolerance=*/1e-6);
  PROCLUS_CHECK(eigen.ok());
  const size_t d = covariance.rows();
  Matrix basis(std::min(s, d), d);
  for (size_t e = 0; e < basis.rows(); ++e) {
    auto src = eigen->vectors.row(e);
    std::copy(src.begin(), src.end(), basis.row(e).begin());
  }
  return basis;
}

// Recomputes means/covariances/bases of the clusters from an assignment;
// drops empty clusters (compacting labels). Returns cluster states.
std::vector<ClusterState> RebuildClusters(const Dataset& dataset,
                                          std::vector<int>* labels,
                                          size_t num_clusters,
                                          size_t subspace_dims) {
  const size_t d = dataset.dims();
  std::vector<ClusterState> clusters(num_clusters);
  for (auto& cluster : clusters) {
    cluster.mean.assign(d, 0.0);
    cluster.covariance = Matrix(d, d);
  }
  for (size_t p = 0; p < dataset.size(); ++p) {
    int label = (*labels)[p];
    PROCLUS_CHECK(label >= 0 &&
                  static_cast<size_t>(label) < num_clusters);
    ClusterState& cluster = clusters[static_cast<size_t>(label)];
    auto point = dataset.point(p);
    for (size_t j = 0; j < d; ++j) cluster.mean[j] += point[j];
    ++cluster.count;
  }
  for (auto& cluster : clusters) {
    if (cluster.count == 0) continue;
    for (double& m : cluster.mean)
      m /= static_cast<double>(cluster.count);
  }
  for (size_t p = 0; p < dataset.size(); ++p) {
    ClusterState& cluster =
        clusters[static_cast<size_t>((*labels)[p])];
    auto point = dataset.point(p);
    for (size_t i = 0; i < d; ++i) {
      double di = point[i] - cluster.mean[i];
      for (size_t j = i; j < d; ++j)
        cluster.covariance(i, j) += di * (point[j] - cluster.mean[j]);
    }
  }
  for (auto& cluster : clusters) {
    if (cluster.count == 0) continue;
    const double inv = 1.0 / static_cast<double>(cluster.count);
    for (size_t i = 0; i < d; ++i)
      for (size_t j = i; j < d; ++j) {
        cluster.covariance(i, j) *= inv;
        cluster.covariance(j, i) = cluster.covariance(i, j);
      }
  }

  // Compact away empty clusters and renumber labels.
  std::vector<int> remap(num_clusters, -1);
  std::vector<ClusterState> compacted;
  for (size_t i = 0; i < num_clusters; ++i) {
    if (clusters[i].count == 0) continue;
    remap[i] = static_cast<int>(compacted.size());
    compacted.push_back(std::move(clusters[i]));
  }
  for (auto& label : *labels)
    label = remap[static_cast<size_t>(label)];
  for (auto& cluster : compacted)
    cluster.basis = TightBasis(cluster.covariance, subspace_dims);
  return compacted;
}

// Assigns every point to the cluster with the smallest projected
// distance. Ties to the lower index.
void AssignProjected(const Dataset& dataset,
                     const std::vector<ClusterState>& clusters,
                     std::vector<int>* labels) {
  for (size_t p = 0; p < dataset.size(); ++p) {
    auto point = dataset.point(p);
    double best = std::numeric_limits<double>::infinity();
    int best_i = 0;
    for (size_t i = 0; i < clusters.size(); ++i) {
      double dist =
          ProjectedDistance(point, clusters[i].mean, clusters[i].basis);
      if (dist < best) {
        best = dist;
        best_i = static_cast<int>(i);
      }
    }
    (*labels)[p] = best_i;
  }
}

// Merges clusters (by union projected energy, cheapest first) until at
// most `target` remain. Labels are renumbered accordingly.
void MergeClusters(std::vector<ClusterState>* clusters,
                   std::vector<int>* labels, size_t target,
                   size_t subspace_dims) {
  while (clusters->size() > target) {
    size_t best_a = 0, best_b = 1;
    double best_cost = std::numeric_limits<double>::infinity();
    Matrix best_covariance;
    std::vector<double> best_mean;
    for (size_t a = 0; a < clusters->size(); ++a) {
      for (size_t b = a + 1; b < clusters->size(); ++b) {
        std::vector<double> mean;
        Matrix covariance =
            UnionCovariance((*clusters)[a], (*clusters)[b], &mean);
        double cost = ProjectedEnergy(covariance, subspace_dims);
        if (cost < best_cost) {
          best_cost = cost;
          best_a = a;
          best_b = b;
          best_covariance = std::move(covariance);
          best_mean = std::move(mean);
        }
      }
    }
    // Fold b into a.
    ClusterState& a = (*clusters)[best_a];
    ClusterState& b = (*clusters)[best_b];
    a.count += b.count;
    a.mean = std::move(best_mean);
    a.covariance = std::move(best_covariance);
    a.basis = TightBasis(a.covariance, subspace_dims);
    for (auto& label : *labels) {
      if (label == static_cast<int>(best_b))
        label = static_cast<int>(best_a);
      else if (label > static_cast<int>(best_b))
        --label;
    }
    clusters->erase(clusters->begin() + static_cast<long>(best_b));
  }
}

}  // namespace

Result<OrclusResult> RunOrclus(const Dataset& dataset,
                               const OrclusParams& params) {
  PROCLUS_RETURN_IF_ERROR(params.Validate(dataset.size(), dataset.dims()));
  const size_t n = dataset.size();
  const size_t d = dataset.dims();
  const size_t k = params.num_clusters;
  const size_t l = params.subspace_dims;
  Rng rng(params.seed);

  size_t k0 = params.initial_seeds == 0 ? 15 * k : params.initial_seeds;
  k0 = std::min(k0, n);
  k0 = std::max(k0, k);

  // Decay schedules: cluster count by alpha, subspace dimensionality by
  // beta, chosen so both reach their targets after the same number of
  // iterations.
  size_t rounds = 0;
  for (size_t kc = k0; kc > k;
       kc = std::max(k, static_cast<size_t>(std::floor(
                            params.alpha * static_cast<double>(kc)))))
    ++rounds;
  rounds = std::max<size_t>(rounds, 1);
  const double beta =
      std::pow(static_cast<double>(l) / static_cast<double>(d),
               1.0 / static_cast<double>(rounds));

  // Initial seeds: random points, full-dimensional subspaces.
  std::vector<size_t> seed_indices = rng.SampleWithoutReplacement(n, k0);
  std::vector<ClusterState> clusters(k0);
  for (size_t i = 0; i < k0; ++i) {
    auto point = dataset.point(seed_indices[i]);
    clusters[i].count = 1;
    clusters[i].mean.assign(point.begin(), point.end());
    clusters[i].covariance = Matrix(d, d);
    // Identity basis rows = axis directions (full space).
    clusters[i].basis = Matrix(d, d);
    for (size_t j = 0; j < d; ++j) clusters[i].basis(j, j) = 1.0;
  }

  std::vector<int> labels(n, 0);
  OrclusResult result;
  size_t kc = k0;
  double lc = static_cast<double>(d);
  while (true) {
    ++result.iterations;
    size_t current_dims = std::max(
        l, static_cast<size_t>(std::llround(lc)));
    AssignProjected(dataset, clusters, &labels);
    clusters = RebuildClusters(dataset, &labels, clusters.size(),
                               current_dims);
    if (kc <= k && clusters.size() <= k) break;
    size_t next_kc = std::max(
        k, static_cast<size_t>(
               std::floor(params.alpha * static_cast<double>(kc))));
    lc = std::max(static_cast<double>(l), lc * beta);
    size_t next_dims = std::max(
        l, static_cast<size_t>(std::llround(lc)));
    MergeClusters(&clusters, &labels, next_kc, next_dims);
    kc = clusters.size();
    if (result.iterations > 100) break;  // Safety bound.
  }

  // Final assignment and bookkeeping at exactly l dimensions.
  for (auto& cluster : clusters)
    cluster.basis = TightBasis(cluster.covariance, l);
  AssignProjected(dataset, clusters, &labels);
  clusters = RebuildClusters(dataset, &labels, clusters.size(), l);

  result.labels = std::move(labels);
  result.centroids = Matrix(clusters.size(), d);
  result.subspaces.reserve(clusters.size());
  double objective = 0.0;
  for (size_t i = 0; i < clusters.size(); ++i) {
    for (size_t j = 0; j < d; ++j)
      result.centroids(i, j) = clusters[i].mean[j];
    result.subspaces.push_back(clusters[i].basis);
  }
  for (size_t p = 0; p < n; ++p) {
    size_t i = static_cast<size_t>(result.labels[p]);
    objective += ProjectedDistance(dataset.point(p), clusters[i].mean,
                                   clusters[i].basis);
  }
  result.objective = objective / static_cast<double>(n);
  return result;
}

}  // namespace proclus
