#include "gen/synthetic.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/rng.h"

namespace proclus {

Status GeneratorParams::Validate() const {
  if (num_points == 0) return Status::InvalidArgument("num_points must be > 0");
  if (space_dims < 2)
    return Status::InvalidArgument("space_dims must be >= 2");
  if (num_clusters == 0)
    return Status::InvalidArgument("num_clusters must be > 0");
  if (!cluster_dim_counts.empty() &&
      cluster_dim_counts.size() != num_clusters) {
    return Status::InvalidArgument(
        "cluster_dim_counts must be empty or have num_clusters entries");
  }
  if (outlier_fraction < 0.0 || outlier_fraction >= 1.0)
    return Status::InvalidArgument("outlier_fraction must be in [0, 1)");
  if (poisson_mean <= 0.0 && cluster_dim_counts.empty())
    return Status::InvalidArgument("poisson_mean must be > 0");
  if (spread <= 0.0) return Status::InvalidArgument("spread must be > 0");
  if (max_scale < 1.0)
    return Status::InvalidArgument("max_scale must be >= 1");
  if (range <= 0.0) return Status::InvalidArgument("range must be > 0");
  if (rotation_max_degrees < 0.0 || rotation_max_degrees > 90.0)
    return Status::InvalidArgument(
        "rotation_max_degrees must be in [0, 90]");
  size_t min_cluster_points =
      static_cast<size_t>(static_cast<double>(num_points) *
                          (1.0 - outlier_fraction));
  if (min_cluster_points < num_clusters)
    return Status::InvalidArgument(
        "not enough non-outlier points for the requested cluster count");
  return Status::OK();
}

namespace {

// Per-cluster dimensionality: Poisson(lambda) clamped to [2, d], or the
// user-pinned counts.
std::vector<size_t> DrawClusterDimCounts(const GeneratorParams& params,
                                         Rng& rng) {
  std::vector<size_t> counts(params.num_clusters);
  if (!params.cluster_dim_counts.empty()) {
    for (size_t i = 0; i < params.num_clusters; ++i) {
      counts[i] = std::clamp<size_t>(params.cluster_dim_counts[i], 2,
                                     params.space_dims);
    }
    return counts;
  }
  for (size_t i = 0; i < params.num_clusters; ++i) {
    int draw = rng.Poisson(params.poisson_mean);
    counts[i] = std::clamp<size_t>(static_cast<size_t>(std::max(draw, 0)), 2,
                                   params.space_dims);
  }
  return counts;
}

// Inductive dimension selection of Section 4.1: the first cluster's
// dimensions are random; cluster i inherits min(d_{i-1}, d_i / 2)
// dimensions from cluster i-1 and draws the rest at random.
std::vector<DimensionSet> DrawClusterDims(const GeneratorParams& params,
                                          const std::vector<size_t>& counts,
                                          Rng& rng) {
  const size_t d = params.space_dims;
  std::vector<DimensionSet> dims;
  dims.reserve(counts.size());
  std::vector<uint32_t> prev;
  for (size_t i = 0; i < counts.size(); ++i) {
    const size_t want = counts[i];
    DimensionSet set(d);
    std::vector<uint32_t> chosen;
    // draws: invariant — the generator is sequential seeded driver code:
    // its draw sequence is a pure function of params, so a data-dependent
    // count cannot desynchronize anything (no scans, no speculation).
    if (i > 0) {
      size_t inherit =
          std::min(prev.size(), static_cast<size_t>(want / 2));
      if (inherit > 0) {
        std::vector<size_t> pick = rng.SampleWithoutReplacement(
            prev.size(), inherit);
        for (size_t p : pick) chosen.push_back(prev[p]);
      }
    }
    // Fill the remainder with fresh random dimensions.
    std::vector<uint32_t> pool;
    pool.reserve(d);
    for (uint32_t j = 0; j < d; ++j) {
      if (std::find(chosen.begin(), chosen.end(), j) == chosen.end())
        pool.push_back(j);
    }
    rng.Shuffle(pool);
    for (size_t p = 0; chosen.size() < want; ++p) chosen.push_back(pool[p]);
    for (uint32_t j : chosen) set.Add(j);
    PROCLUS_CHECK(set.size() == want);
    dims.push_back(std::move(set));
    prev = chosen;
  }
  return dims;
}

// Cluster sizes proportional to k iid Exponential(1) realizations, summing
// to num_cluster_points, each cluster non-empty.
std::vector<size_t> DrawClusterSizes(size_t num_cluster_points, size_t k,
                                     Rng& rng) {
  std::vector<double> r(k);
  double total = 0.0;
  for (double& v : r) {
    v = rng.Exponential(1.0);
    total += v;
  }
  std::vector<size_t> sizes(k, 1);  // Guarantee non-empty clusters.
  size_t assigned = k;
  PROCLUS_CHECK(num_cluster_points >= k);
  for (size_t i = 0; i < k; ++i) {
    size_t extra = static_cast<size_t>(
        std::floor(static_cast<double>(num_cluster_points - k) * r[i] /
                   total));
    sizes[i] += extra;
    assigned += extra;
  }
  // Distribute the rounding remainder round-robin.
  size_t i = 0;
  while (assigned < num_cluster_points) {
    ++sizes[i % k];
    ++assigned;
    ++i;
  }
  return sizes;
}

}  // namespace

Result<SyntheticData> GenerateSynthetic(const GeneratorParams& params) {
  PROCLUS_RETURN_IF_ERROR(params.Validate());
  Rng rng(params.seed);

  const size_t d = params.space_dims;
  const size_t k = params.num_clusters;
  const size_t n = params.num_points;
  const size_t num_outliers = static_cast<size_t>(
      std::floor(static_cast<double>(n) * params.outlier_fraction));
  const size_t num_cluster_points = n - num_outliers;

  // Anchor points, cluster dimensions, cluster sizes.
  std::vector<std::vector<double>> anchors(k, std::vector<double>(d));
  for (auto& anchor : anchors)
    for (double& coord : anchor) coord = rng.Uniform(0.0, params.range);

  std::vector<size_t> dim_counts = DrawClusterDimCounts(params, rng);
  std::vector<DimensionSet> cluster_dims =
      DrawClusterDims(params, dim_counts, rng);
  std::vector<size_t> sizes = DrawClusterSizes(num_cluster_points, k, rng);

  // Per-(cluster, dimension) scale factors s_ij in [1, max_scale].
  std::vector<std::vector<double>> sigma(k, std::vector<double>(d, 0.0));
  for (size_t i = 0; i < k; ++i) {
    for (uint32_t j : cluster_dims[i].ToVector()) {
      double s_ij = rng.Uniform(1.0, params.max_scale);
      sigma[i][j] = s_ij * params.spread;
    }
  }

  Matrix points(n, d);
  std::vector<int> labels(n, kOutlierLabel);

  size_t row = 0;
  const double max_angle =
      params.rotation_max_degrees * 3.14159265358979323846 / 180.0;
  for (size_t i = 0; i < k; ++i) {
    std::vector<uint32_t> cdims = cluster_dims[i].ToVector();
    std::vector<bool> is_cluster_dim(d, false);
    for (uint32_t j : cdims) is_cluster_dim[j] = true;
    // Beyond-paper rotation: tilt alternating cluster dimensions toward
    // randomly chosen non-cluster dimensions (empty at 0 degrees).
    struct Givens {
      uint32_t a, b;
      double cos_t, sin_t;
    };
    std::vector<Givens> rotations;
    // draws: invariant — sequential seeded generator; the branch and the
    // pair count are pure functions of params, so the draw sequence is
    // reproducible by construction.
    if (max_angle > 0.0) {
      std::vector<uint32_t> noise_dims;
      for (uint32_t j = 0; j < d; ++j)
        if (!is_cluster_dim[j]) noise_dims.push_back(j);
      if (!noise_dims.empty()) {
        rng.Shuffle(noise_dims);
        size_t next_noise = 0;
        for (size_t pair = 0; pair < cdims.size() && next_noise <
                                                     noise_dims.size();
             pair += 2) {
          double theta = rng.Uniform(0.5 * max_angle, max_angle);
          rotations.push_back({cdims[pair], noise_dims[next_noise++],
                               std::cos(theta), std::sin(theta)});
        }
      }
    }
    for (size_t p = 0; p < sizes[i]; ++p, ++row) {
      auto out = points.row(row);
      for (size_t j = 0; j < d; ++j) {
        // draws: invariant — each arm consumes exactly one draw per
        // coordinate, so the stream position is path-independent.
        if (is_cluster_dim[j]) {
          out[j] = rng.Normal(anchors[i][j], sigma[i][j]);
        } else {
          out[j] = rng.Uniform(0.0, params.range);
        }
      }
      for (const Givens& g : rotations) {
        double x = out[g.a] - anchors[i][g.a];
        double y = out[g.b] - anchors[i][g.b];
        out[g.a] = anchors[i][g.a] + g.cos_t * x - g.sin_t * y;
        out[g.b] = anchors[i][g.b] + g.sin_t * x + g.cos_t * y;
      }
      labels[row] = static_cast<int>(i);
    }
  }
  for (size_t p = 0; p < num_outliers; ++p, ++row) {
    auto out = points.row(row);
    for (size_t j = 0; j < d; ++j) out[j] = rng.Uniform(0.0, params.range);
  }
  // invariant: cluster sizes plus outliers were constructed to sum to n.
  PROCLUS_CHECK(row == n);

  // Shuffle points so cluster membership is not encoded in file order.
  std::vector<size_t> perm(n);
  std::iota(perm.begin(), perm.end(), size_t{0});
  rng.Shuffle(perm);
  Matrix shuffled(n, d);
  std::vector<int> shuffled_labels(n);
  for (size_t r = 0; r < n; ++r) {
    auto src = points.row(perm[r]);
    auto dst = shuffled.row(r);
    std::copy(src.begin(), src.end(), dst.begin());
    shuffled_labels[r] = labels[perm[r]];
  }

  SyntheticData out;
  out.dataset = Dataset(std::move(shuffled));
  out.truth.labels = std::move(shuffled_labels);
  out.truth.cluster_dims = std::move(cluster_dims);
  out.truth.anchors = std::move(anchors);
  return out;
}

}  // namespace proclus
