// Synthetic data generator reproducing Section 4.1 of the paper (itself a
// generalization of the BIRCH generator to cluster-specific subspaces):
//
//  * Points live in [0, 100]^d. A fraction F_outlier of points are outliers
//    distributed uniformly over the whole space.
//  * k anchor points are drawn uniformly; cluster i's points are centered
//    on anchor c_i.
//  * The number of dimensions of cluster i is a Poisson(lambda) realization
//    clamped to [2, d] (or an explicit per-cluster list, used to reproduce
//    the paper's Case 1 / Case 2 input files exactly).
//  * Dimensions are inherited between consecutive clusters: cluster i keeps
//    min(d_{i-1}, ceil(d_i / 2)) dimensions of cluster i-1 and draws the
//    rest at random, modeling clusters that share correlated attributes.
//  * Cluster sizes are proportional to k iid Exponential(1) realizations.
//  * On a cluster dimension j, coordinates follow N(c_ij, (s_ij * r)^2)
//    with spread r and per-(cluster, dimension) scale s_ij uniform in
//    [1, s]; the paper uses r = s = 2. On non-cluster dimensions,
//    coordinates are uniform over [0, 100].

#ifndef PROCLUS_GEN_SYNTHETIC_H_
#define PROCLUS_GEN_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "gen/ground_truth.h"

namespace proclus {

/// Parameters of the Section 4.1 generator. Defaults reproduce the paper's
/// settings.
struct GeneratorParams {
  /// Total number of points N (clusters + outliers).
  size_t num_points = 100000;
  /// Dimensionality d of the space.
  size_t space_dims = 20;
  /// Number of clusters k.
  size_t num_clusters = 5;
  /// Mean of the Poisson controlling cluster dimensionality. Ignored when
  /// `cluster_dim_counts` is non-empty.
  double poisson_mean = 7.0;
  /// Explicit per-cluster dimensionality (size must be `num_clusters` when
  /// non-empty); each value is clamped to [2, space_dims]. Used to pin the
  /// paper's Case 1 (all 7) and Case 2 ({2,2,3,6,7}) inputs.
  std::vector<size_t> cluster_dim_counts;
  /// Fraction of points generated as uniform outliers (paper: 5%).
  double outlier_fraction = 0.05;
  /// Spread parameter r of the normal distributions (paper: 2).
  double spread = 2.0;
  /// Upper bound s of the per-dimension scale factor s_ij in [1, s]
  /// (paper: 2).
  double max_scale = 2.0;
  /// Coordinate range [0, range] of the space (paper: 100).
  double range = 100.0;
  /// Beyond-paper extension: tilt each cluster out of its axis-parallel
  /// subspace by random Givens rotations (around the anchor point) in
  /// the planes spanned by alternating cluster dimensions and randomly
  /// chosen non-cluster dimensions, with angles up to this many degrees.
  /// 0 reproduces the paper's generator exactly; larger angles smear the
  /// correlation along diagonals that axis-parallel projected clustering
  /// cannot represent — the limitation later addressed by arbitrarily-
  /// oriented methods (ORCLUS). Ground truth keeps the pre-rotation
  /// dimension sets, so recovery scores show the degradation directly.
  double rotation_max_degrees = 0.0;
  /// Seed for the deterministic generator stream.
  uint64_t seed = 42;

  /// Validates parameter consistency.
  Status Validate() const;
};

/// A generated dataset together with its ground truth.
struct SyntheticData {
  Dataset dataset;
  GroundTruth truth;
};

/// Runs the generator. Returns InvalidArgument when params are inconsistent.
Result<SyntheticData> GenerateSynthetic(const GeneratorParams& params);

}  // namespace proclus

#endif  // PROCLUS_GEN_SYNTHETIC_H_
