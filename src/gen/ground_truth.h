// Ground truth emitted by the synthetic generator and consumed by the
// evaluation layer (confusion matrices, dimension-recovery tables).

#ifndef PROCLUS_GEN_GROUND_TRUTH_H_
#define PROCLUS_GEN_GROUND_TRUTH_H_

#include <cstdint>
#include <vector>

#include "common/dimension_set.h"

namespace proclus {

/// Label value marking an outlier point in ground truth and in clustering
/// results alike.
inline constexpr int kOutlierLabel = -1;

/// What the generator knows about the data it produced.
struct GroundTruth {
  /// Per-point cluster id in [0, k), or kOutlierLabel for generated outliers.
  std::vector<int> labels;
  /// Per-cluster set of correlated dimensions.
  std::vector<DimensionSet> cluster_dims;
  /// Per-cluster anchor point (the normal-distribution means on cluster
  /// dimensions).
  std::vector<std::vector<double>> anchors;

  /// Number of clusters.
  size_t num_clusters() const { return cluster_dims.size(); }

  /// Number of points carrying each cluster id (index k == outliers).
  std::vector<size_t> ClusterSizes() const {
    std::vector<size_t> sizes(num_clusters() + 1, 0);
    for (int label : labels) {
      if (label == kOutlierLabel)
        ++sizes[num_clusters()];
      else
        ++sizes[static_cast<size_t>(label)];
    }
    return sizes;
  }
};

}  // namespace proclus

#endif  // PROCLUS_GEN_GROUND_TRUTH_H_
