// CLIQUE driver (Agrawal, Gehrke, Gunopulos, Raghavan — SIGMOD 1998),
// re-implemented from its description as the comparison baseline of the
// PROCLUS paper.
//
// Pipeline: uniform xi-interval grid -> bottom-up dense unit mining with
// monotonicity pruning -> connected components per subspace -> greedy
// rectangular covers. Unlike PROCLUS the output is NOT a partition: a
// point can fall in dense regions of several subspaces, and the regions'
// lower-dimensional projections are dense as well. The report mode
// controls which subspaces produce output clusters:
//
//  * kMaximal  — clusters only from subspaces not strictly contained in
//                another subspace holding dense units (default; closest to
//                how the PROCLUS paper summarizes CLIQUE output).
//  * kAll      — clusters from every subspace with dense units.
//  * kTargetDim— clusters only from subspaces of exactly `target_dim`
//                dimensions (the "find clusters only in 7 dimensions"
//                switch used for Table 5).

#ifndef PROCLUS_CLIQUE_CLIQUE_H_
#define PROCLUS_CLIQUE_CLIQUE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "clique/clusters.h"
#include "clique/dense_units.h"
#include "clique/grid.h"
#include "data/dataset.h"

namespace proclus {

/// Which subspaces contribute output clusters.
///
///  * kMaxLevel  — only subspaces of the highest dimensionality reached
///                 (how the PROCLUS paper summarizes CLIQUE's output:
///                 "CLIQUE reported output clusters in 8 dimensions").
///  * kMaximal   — subspaces not strictly contained in another subspace
///                 with dense units.
///  * kAll       — every subspace with dense units.
///  * kTargetDim — exactly `target_dim`-dimensional subspaces (the
///                 "find clusters only in 7 dimensions" option of §4.2).
enum class CliqueReportMode { kMaxLevel, kMaximal, kAll, kTargetDim };

/// User parameters of CLIQUE (paper notation: xi intervals, tau density).
struct CliqueParams {
  /// Number of intervals per dimension (paper experiments: 10).
  size_t xi = 10;
  /// Density threshold as percent of N (paper experiments: 0.1 - 0.8).
  double tau_percent = 0.5;
  /// Output cluster selection.
  CliqueReportMode report_mode = CliqueReportMode::kMaxLevel;
  /// Apply CLIQUE's MDL subspace selectivity pruning during mining (the
  /// original algorithm's behavior, and the default): low-coverage
  /// subspaces are discarded level by level, keeping the subspace count
  /// tractable at permissive tau at the cost of losing clusters whose
  /// support chains run through pruned subspaces. Set false for the
  /// exact (exhaustive) miner.
  bool mdl_prune = true;
  /// Subspace dimensionality for kTargetDim.
  size_t target_dim = 0;
  /// Optional cap on mined levels (0 = unlimited); also passed to the
  /// miner as a safety bound.
  size_t max_level = 0;
  /// Candidate cap per level (safety bound for low tau).
  size_t max_candidates_per_level = 4000000;
  /// Ignore output clusters from 1-dimensional subspaces (a single dense
  /// interval is rarely a meaningful cluster; the PROCLUS paper's inputs
  /// always have >= 2-dimensional structure).
  bool skip_one_dimensional = true;

  Status Validate() const;
};

/// One output cluster with point-level statistics.
struct CliqueCluster {
  Subspace subspace;
  /// Dense cells of the connected component (sorted keys).
  std::vector<uint64_t> cells;
  /// Greedy rectangular cover (the reported description).
  std::vector<UnitRegion> regions;
  /// Number of data points inside the component.
  size_t point_count = 0;
  /// Points per ground-truth label (size k+1, last = outliers); filled
  /// only when ground-truth labels were supplied to RunClique.
  std::vector<size_t> label_counts;
};

/// Full CLIQUE result plus the summary statistics the PROCLUS paper
/// reports (coverage and average overlap).
struct CliqueResult {
  std::vector<CliqueCluster> clusters;
  /// Density threshold in points.
  size_t threshold = 0;
  /// Highest subspace dimensionality with dense units.
  size_t max_level = 0;
  /// True if the miner hit its candidate cap.
  bool truncated = false;
  /// Number of distinct points contained in at least one output cluster.
  size_t covered_points = 0;
  /// Average overlap: sum_i |C_i| / |union_i C_i| (1.0 = partition-like).
  double overlap = 0.0;
  /// Fraction of ground-truth cluster points covered by some output
  /// cluster (only meaningful when labels were supplied; else -1).
  double cluster_point_coverage = -1.0;
};

/// Runs CLIQUE on `dataset`. When `truth_labels` is non-null (size N,
/// values in [0,k) or kOutlierLabel), per-cluster label counts and the
/// coverage statistic are filled in.
Result<CliqueResult> RunClique(const Dataset& dataset,
                               const CliqueParams& params,
                               const std::vector<int>* truth_labels = nullptr);

/// Out-of-core variant: runs CLIQUE over any PointSource with exactly two
/// scans of the data (bounds, then quantization); everything downstream
/// operates on the N x d byte cell matrix, which is 8x smaller than the
/// coordinates. Same result as RunClique over the same points.
Result<CliqueResult> RunCliqueOnSource(
    const PointSource& source, const CliqueParams& params,
    const std::vector<int>* truth_labels = nullptr);

}  // namespace proclus

#endif  // PROCLUS_CLIQUE_CLIQUE_H_
