// Bottom-up dense unit mining (the core of CLIQUE).
//
// Level 1 scans each dimension's interval histogram. Level k candidates
// are produced by the apriori join of level k-1 dense units — two units in
// subspaces sharing their first k-2 dimensions, with equal intervals on
// those dimensions — followed by monotonicity pruning (every (k-1)-
// dimensional projection of a dense unit must itself be dense) and a
// counting pass over the data.

#ifndef PROCLUS_CLIQUE_DENSE_UNITS_H_
#define PROCLUS_CLIQUE_DENSE_UNITS_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "clique/subspace.h"

namespace proclus {

/// Dense units of one subspace: cell key -> point count.
using DenseCellMap = std::unordered_map<uint64_t, uint32_t>;

/// Dense units of all subspaces at one level.
using DenseLevel = std::map<Subspace, DenseCellMap>;

/// Configuration of the miner.
struct MinerParams {
  /// Intervals per dimension.
  size_t xi = 10;
  /// Density threshold as a percentage of N: a unit is dense when its
  /// point count >= ceil(tau_percent/100 * N) (paper values: 0.1 - 0.8).
  double tau_percent = 0.5;
  /// Stop after this level (0 = no limit beyond what keys can encode).
  size_t max_level = 0;
  /// Safety cap on candidate units per level; when exceeded, excess
  /// candidates are dropped deterministically and `truncated` is set.
  size_t max_candidates_per_level = 4000000;
  /// Apply CLIQUE's MDL-based subspace selectivity pruning after each
  /// level: subspaces are sorted by coverage (points in their dense
  /// units) and the low-coverage suffix minimizing the MDL code length is
  /// discarded before the next level's candidates are generated. This is
  /// what keeps the original algorithm tractable; it can prune subspaces
  /// that would have extended to genuinely dense higher subspaces.
  bool mdl_prune = false;
};

/// Outcome of the mining pass.
struct MinerResult {
  /// levels[L-1] holds the dense units of all L-dimensional subspaces.
  std::vector<DenseLevel> levels;
  /// Point-count threshold actually applied.
  size_t threshold = 0;
  /// True when the candidate cap was hit at some level.
  bool truncated = false;

  /// Highest level with at least one dense unit (0 when none).
  size_t MaxLevel() const {
    for (size_t level = levels.size(); level-- > 0;)
      if (!levels[level].empty()) return level + 1;
    return 0;
  }
};

/// Mines dense units from the quantized point matrix `cells` (n x d,
/// row-major interval indices produced by Grid::QuantizeAll).
Result<MinerResult> MineDenseUnits(const std::vector<uint8_t>& cells,
                                   size_t num_points, size_t dims,
                                   const MinerParams& params);

/// MDL cut of CLIQUE's subspace pruning: given per-subspace coverages
/// sorted in DECREASING order, returns how many subspaces to keep (the
/// prefix whose selected/pruned split minimizes the two-part code length
/// CL(i) = log2(mu_I) + sum_selected log2(|x - mu_I| + 1) + log2(mu_P) +
/// sum_pruned log2(|x - mu_P| + 1), with ceil-ed means; ties keep more).
/// Exposed for testing.
size_t MdlCutPoint(const std::vector<size_t>& coverages_desc);

}  // namespace proclus

#endif  // PROCLUS_CLIQUE_DENSE_UNITS_H_
