// Uniform grid quantization for CLIQUE (Agrawal et al., SIGMOD 1998).
//
// Each dimension is partitioned into xi equal-width intervals over the
// data's bounding box. A *unit* in a subspace S is the cross product of one
// interval per dimension of S; CLIQUE mines units whose point count exceeds
// a density threshold.

#ifndef PROCLUS_CLIQUE_GRID_H_
#define PROCLUS_CLIQUE_GRID_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "data/point_source.h"

namespace proclus {

/// Per-dimension uniform interval grid.
class Grid {
 public:
  /// Builds a grid with `xi` intervals per dimension spanning the dataset's
  /// per-dimension bounds. Requires xi in [2, 255] and a non-empty dataset.
  static Result<Grid> Build(const Dataset& dataset, size_t xi);

  /// Builds the grid from one scan over any PointSource (the out-of-core
  /// path; same result as the Dataset overload for the same points).
  static Result<Grid> BuildFromSource(const PointSource& source, size_t xi);

  /// Quantizes every point of a source into interval indices (N x d,
  /// row-major) with one scan. The cell matrix is 8x smaller than the
  /// coordinates, so it fits in memory even when the data does not.
  Result<std::vector<uint8_t>> QuantizeSource(
      const PointSource& source) const;

  /// Number of intervals per dimension.
  size_t xi() const { return xi_; }

  /// Dimensionality of the gridded space.
  size_t dims() const { return lo_.size(); }

  /// Interval index of coordinate `value` on dimension `dim`, clamped to
  /// [0, xi-1] (the maximum coordinate belongs to the last interval).
  uint8_t Interval(size_t dim, double value) const;

  /// Interval bounds [lo, hi) of interval `idx` on dimension `dim`.
  void IntervalBounds(size_t dim, uint8_t idx, double* lo, double* hi) const;

  /// Quantizes every point: returns an N x d matrix of interval indices.
  std::vector<uint8_t> QuantizeAll(const Dataset& dataset) const;

 private:
  Grid(size_t xi, std::vector<double> lo, std::vector<double> width)
      : xi_(xi), lo_(std::move(lo)), width_(std::move(width)) {}

  size_t xi_;
  std::vector<double> lo_;
  std::vector<double> width_;
};

}  // namespace proclus

#endif  // PROCLUS_CLIQUE_GRID_H_
