#include "clique/clique.h"

#include <algorithm>
#include <unordered_map>

#include "common/check.h"
#include "gen/ground_truth.h"

namespace proclus {

Status CliqueParams::Validate() const {
  if (xi < 2 || xi > 255)
    return Status::InvalidArgument("xi must be in [2, 255]");
  if (tau_percent <= 0.0 || tau_percent > 100.0)
    return Status::InvalidArgument("tau_percent must be in (0, 100]");
  if (report_mode == CliqueReportMode::kTargetDim && target_dim == 0)
    return Status::InvalidArgument("target_dim required for kTargetDim");
  if (max_candidates_per_level == 0)
    return Status::InvalidArgument("max_candidates_per_level must be > 0");
  return Status::OK();
}

namespace {

// Selects the subspaces whose components become output clusters.
std::vector<const DenseLevel::value_type*> SelectSubspaces(
    const MinerResult& mined, const CliqueParams& params) {
  std::vector<const DenseLevel::value_type*> selected;
  const size_t min_level = params.skip_one_dimensional ? 2 : 1;
  switch (params.report_mode) {
    case CliqueReportMode::kMaxLevel: {
      size_t level = mined.MaxLevel();
      if (level >= min_level)
        for (const auto& entry : mined.levels[level - 1])
          selected.push_back(&entry);
      break;
    }
    case CliqueReportMode::kAll: {
      for (size_t level = min_level; level <= mined.levels.size(); ++level)
        for (const auto& entry : mined.levels[level - 1])
          selected.push_back(&entry);
      break;
    }
    case CliqueReportMode::kTargetDim: {
      size_t level = params.target_dim;
      if (level >= min_level && level <= mined.levels.size())
        for (const auto& entry : mined.levels[level - 1])
          selected.push_back(&entry);
      break;
    }
    case CliqueReportMode::kMaximal: {
      // A subspace is maximal if it is not a strict subset of any other
      // subspace holding dense units.
      auto is_subset = [](const Subspace& a, const Subspace& b) {
        if (a.size() >= b.size()) return false;
        size_t bi = 0;
        for (uint32_t dim : a) {
          while (bi < b.size() && b[bi] < dim) ++bi;
          if (bi == b.size() || b[bi] != dim) return false;
          ++bi;
        }
        return true;
      };
      for (size_t level = min_level; level <= mined.levels.size(); ++level) {
        for (const auto& entry : mined.levels[level - 1]) {
          bool maximal = true;
          for (size_t higher = level + 1;
               higher <= mined.levels.size() && maximal; ++higher) {
            for (const auto& candidate : mined.levels[higher - 1]) {
              if (is_subset(entry.first, candidate.first)) {
                maximal = false;
                break;
              }
            }
          }
          if (maximal) selected.push_back(&entry);
        }
      }
      break;
    }
  }
  return selected;
}

}  // namespace

namespace {

// The shared post-quantization pipeline: mining, cluster formation, and
// the point pass over the cell matrix.
Result<CliqueResult> RunCliqueQuantized(
    const std::vector<uint8_t>& cells, size_t num_points, size_t num_dims,
    const CliqueParams& params, const std::vector<int>* truth_labels);

}  // namespace

Result<CliqueResult> RunClique(const Dataset& dataset,
                               const CliqueParams& params,
                               const std::vector<int>* truth_labels) {
  PROCLUS_RETURN_IF_ERROR(params.Validate());
  if (truth_labels && truth_labels->size() != dataset.size())
    return Status::InvalidArgument("truth label count != dataset size");
  auto grid = Grid::Build(dataset, params.xi);
  PROCLUS_RETURN_IF_ERROR(grid.status());
  std::vector<uint8_t> cells = grid->QuantizeAll(dataset);
  return RunCliqueQuantized(cells, dataset.size(), dataset.dims(), params,
                            truth_labels);
}

Result<CliqueResult> RunCliqueOnSource(const PointSource& source,
                                       const CliqueParams& params,
                                       const std::vector<int>* truth_labels) {
  PROCLUS_RETURN_IF_ERROR(params.Validate());
  if (truth_labels && truth_labels->size() != source.size())
    return Status::InvalidArgument("truth label count != source size");
  auto grid = Grid::BuildFromSource(source, params.xi);
  PROCLUS_RETURN_IF_ERROR(grid.status());
  auto cells = grid->QuantizeSource(source);
  PROCLUS_RETURN_IF_ERROR(cells.status());
  return RunCliqueQuantized(*cells, source.size(), source.dims(), params,
                            truth_labels);
}

namespace {

Result<CliqueResult> RunCliqueQuantized(
    const std::vector<uint8_t>& cells, size_t num_points, size_t num_dims,
    const CliqueParams& params, const std::vector<int>* truth_labels) {
  MinerParams miner_params;
  miner_params.xi = params.xi;
  miner_params.tau_percent = params.tau_percent;
  miner_params.max_level = params.max_level;
  miner_params.max_candidates_per_level = params.max_candidates_per_level;
  miner_params.mdl_prune = params.mdl_prune;
  auto mined_result =
      MineDenseUnits(cells, num_points, num_dims, miner_params);
  PROCLUS_RETURN_IF_ERROR(mined_result.status());
  const MinerResult& mined = *mined_result;

  CliqueResult result;
  result.threshold = mined.threshold;
  result.max_level = mined.MaxLevel();
  result.truncated = mined.truncated;

  // Number of ground-truth clusters (for label_counts sizing).
  size_t truth_k = 0;
  if (truth_labels) {
    for (int label : *truth_labels)
      if (label != kOutlierLabel)
        truth_k = std::max(truth_k, static_cast<size_t>(label) + 1);
  }

  // Build output clusters per selected subspace, and a per-subspace
  // cell-key -> output-cluster index for the point pass.
  std::vector<const DenseLevel::value_type*> selected =
      SelectSubspaces(mined, params);
  struct SubspaceLookup {
    const Subspace* subspace;
    std::unordered_map<uint64_t, size_t> cell_to_cluster;  // global index
  };
  std::vector<SubspaceLookup> lookups;
  for (const auto* entry : selected) {
    std::vector<UnitCluster> components =
        ConnectedComponents(entry->first, entry->second, params.xi);
    SubspaceLookup lookup;
    lookup.subspace = &entry->first;
    for (auto& component : components) {
      size_t index = result.clusters.size();
      for (uint64_t key : component.cells)
        lookup.cell_to_cluster.emplace(key, index);
      CliqueCluster cluster;
      cluster.subspace = component.subspace;
      cluster.cells = std::move(component.cells);
      cluster.regions = std::move(component.regions);
      if (truth_labels) cluster.label_counts.assign(truth_k + 1, 0);
      result.clusters.push_back(std::move(cluster));
    }
    lookups.push_back(std::move(lookup));
  }

  // Point pass: membership counts, coverage, overlap.
  const size_t n = num_points;
  const size_t d = num_dims;
  size_t covered = 0;
  size_t covered_cluster_points = 0;
  size_t total_cluster_points = 0;
  size_t membership_total = 0;
  for (size_t p = 0; p < n; ++p) {
    const uint8_t* row = cells.data() + p * d;
    bool in_any = false;
    for (const auto& lookup : lookups) {
      uint64_t key = 0;
      for (uint32_t dim : *lookup.subspace)
        key = key * params.xi + row[dim];
      auto it = lookup.cell_to_cluster.find(key);
      if (it == lookup.cell_to_cluster.end()) continue;
      in_any = true;
      ++membership_total;
      CliqueCluster& cluster = result.clusters[it->second];
      ++cluster.point_count;
      if (truth_labels) {
        int label = (*truth_labels)[p];
        size_t slot = label == kOutlierLabel ? truth_k
                                             : static_cast<size_t>(label);
        ++cluster.label_counts[slot];
      }
    }
    if (in_any) ++covered;
    if (truth_labels && (*truth_labels)[p] != kOutlierLabel) {
      ++total_cluster_points;
      if (in_any) ++covered_cluster_points;
    }
  }
  result.covered_points = covered;
  result.overlap = covered > 0 ? static_cast<double>(membership_total) /
                                     static_cast<double>(covered)
                               : 0.0;
  if (truth_labels && total_cluster_points > 0) {
    result.cluster_point_coverage =
        static_cast<double>(covered_cluster_points) /
        static_cast<double>(total_cluster_points);
  }
  return result;
}

}  // namespace

}  // namespace proclus
