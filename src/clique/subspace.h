// Subspaces and unit (cell) keys for the CLIQUE miner.
//
// A subspace is a sorted list of dimension indices. Within a subspace, a
// unit is identified by one interval index per dimension; we encode that
// interval vector as a base-xi integer ("cell key") so units can live in
// flat hash maps. With xi <= 255 and levels <= 7 the key fits easily in 64
// bits; the miner checks the level bound explicitly.

#ifndef PROCLUS_CLIQUE_SUBSPACE_H_
#define PROCLUS_CLIQUE_SUBSPACE_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace proclus {

/// Sorted list of dimension indices identifying a subspace.
using Subspace = std::vector<uint32_t>;

/// Maximum subspace level such that cell keys fit in 64 bits for the given
/// xi (floor(64 / log2(xi))).
size_t MaxEncodableLevel(size_t xi);

/// Encodes the interval indices `intervals` (one per subspace dimension,
/// in subspace order) as a base-`xi` integer.
inline uint64_t EncodeCell(const std::vector<uint8_t>& intervals, size_t xi) {
  uint64_t key = 0;
  for (uint8_t v : intervals) {
    PROCLUS_DCHECK(v < xi);
    key = key * static_cast<uint64_t>(xi) + v;
  }
  return key;
}

/// Decodes a cell key back into `level` interval indices.
std::vector<uint8_t> DecodeCell(uint64_t key, size_t level, size_t xi);

/// Extracts interval `pos` (0-based, subspace order) from a cell key of the
/// given level.
uint8_t CellIntervalAt(uint64_t key, size_t level, size_t pos, size_t xi);

/// Apriori-style join: true iff `a` and `b` (equal-length sorted subspaces)
/// share their first |a|-1 dimensions and a.back() < b.back(); then
/// `*joined` is the (|a|+1)-dimensional union.
bool TryJoinSubspaces(const Subspace& a, const Subspace& b, Subspace* joined);

/// All level-1-lower sub-subspaces of `s` (drop one dimension each).
std::vector<Subspace> SubspaceProjections(const Subspace& s);

/// Re-encodes cell `key` of subspace `from` (level |from|) projected onto
/// subspace `onto`, which must be a subsequence of `from`.
uint64_t ProjectCell(uint64_t key, const Subspace& from, const Subspace& onto,
                     size_t xi);

}  // namespace proclus

#endif  // PROCLUS_CLIQUE_SUBSPACE_H_
