#include "clique/dense_units.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/logging.h"

namespace proclus {

namespace {

// Computes the cell key of point `p` in subspace `s` from the quantized
// matrix.
inline uint64_t PointCellKey(const std::vector<uint8_t>& cells, size_t dims,
                             size_t p, const Subspace& s, size_t xi) {
  uint64_t key = 0;
  const uint8_t* row = cells.data() + p * dims;
  for (uint32_t dim : s) key = key * xi + row[dim];
  return key;
}

// Candidate generation for one joinable subspace pair. Joins cells of s1
// and s2 that agree on the shared prefix, prunes candidates with a
// non-dense (k-1)-projection, and inserts survivors (count 0) into *out.
// Returns the number of candidates added; respects `budget`.
size_t GenerateCandidates(const DenseCellMap& cells1,
                          const DenseCellMap& cells2, const Subspace& joined,
                          const DenseLevel& prev, size_t xi, size_t budget,
                          DenseCellMap* out) {
  // Group both unit sets by prefix key (all intervals except the last).
  auto group_by_prefix = [xi](const DenseCellMap& cells) {
    std::unordered_map<uint64_t, std::vector<uint8_t>> groups;
    for (const auto& [key, count] : cells) {
      groups[key / xi].push_back(static_cast<uint8_t>(key % xi));
    }
    return groups;
  };
  auto g1 = group_by_prefix(cells1);
  auto g2 = group_by_prefix(cells2);

  // Projections to verify (the two parents are dense by construction:
  // dropping joined's last dim yields s1's cell, dropping the second-to-
  // last yields s2's). Verify the other k-2 projections.
  const size_t level = joined.size();
  std::vector<std::pair<Subspace, size_t>> checks;  // (projection, dropped)
  for (size_t drop = 0; drop + 2 < level; ++drop) {
    Subspace proj;
    proj.reserve(level - 1);
    for (size_t i = 0; i < level; ++i)
      if (i != drop) proj.push_back(joined[i]);
    checks.emplace_back(std::move(proj), drop);
  }
  std::vector<const DenseCellMap*> check_maps;
  check_maps.reserve(checks.size());
  for (auto& [proj, drop] : checks) {
    auto it = prev.find(proj);
    if (it == prev.end()) return 0;  // Some projection subspace is empty.
    check_maps.push_back(&it->second);
  }

  size_t added = 0;
  std::vector<uint8_t> intervals(level);
  for (const auto& [prefix, lasts1] : g1) {
    auto it2 = g2.find(prefix);
    if (it2 == g2.end()) continue;
    // Decode prefix intervals once.
    std::vector<uint8_t> prefix_intervals =
        DecodeCell(prefix, level - 2, xi);
    for (uint8_t a : lasts1) {
      for (uint8_t b : it2->second) {
        if (added >= budget) return added;
        uint64_t key = (prefix * xi + a) * xi + b;
        if (out->count(key)) continue;
        // Monotonicity pruning on the remaining projections.
        bool pruned = false;
        if (!checks.empty()) {
          std::copy(prefix_intervals.begin(), prefix_intervals.end(),
                    intervals.begin());
          intervals[level - 2] = a;
          intervals[level - 1] = b;
          for (size_t c = 0; c < checks.size(); ++c) {
            size_t drop = checks[c].second;
            uint64_t proj_key = 0;
            for (size_t i = 0; i < level; ++i)
              if (i != drop) proj_key = proj_key * xi + intervals[i];
            if (!check_maps[c]->count(proj_key)) {
              pruned = true;
              break;
            }
          }
        }
        if (pruned) continue;
        out->emplace(key, 0);
        ++added;
      }
    }
  }
  return added;
}

// Prunes the low-coverage suffix of `level` per the MDL criterion.
void MdlPruneLevel(DenseLevel* level) {
  if (level->size() < 2) return;
  struct Entry {
    size_t coverage;
    const Subspace* subspace;
  };
  std::vector<Entry> entries;
  entries.reserve(level->size());
  for (const auto& [subspace, units] : *level) {
    size_t coverage = 0;
    for (const auto& [key, count] : units) coverage += count;
    entries.push_back({coverage, &subspace});
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              if (a.coverage != b.coverage) return a.coverage > b.coverage;
              return *a.subspace < *b.subspace;
            });
  std::vector<size_t> coverages(entries.size());
  for (size_t i = 0; i < entries.size(); ++i)
    coverages[i] = entries[i].coverage;
  size_t keep = MdlCutPoint(coverages);
  // Significance guard: the MDL code length rewards splitting even a
  // hairline gap when the values within each side are nearly constant
  // (e.g. every 2-d subspace fully dense at a permissive tau). Pruning is
  // only meant to discard genuinely low-coverage subspaces, so never cut
  // inside the band within a factor of the level's best coverage.
  const double band = 0.35 * static_cast<double>(coverages.front());
  while (keep < coverages.size() &&
         static_cast<double>(coverages[keep]) >= band)
    ++keep;
  if (GetLogLevel() <= LogLevel::kDebug) {
    std::string dist;
    for (size_t i = 0; i < coverages.size(); ++i) {
      if (i == keep) dist += " ||CUT|| ";
      dist += std::to_string(coverages[i]) + " ";
      if (i > 40) {
        dist += "...";
        break;
      }
    }
    PROCLUS_LOG(Debug) << "MDL level=" << level->begin()->first.size()
                       << " n=" << coverages.size() << " keep=" << keep
                       << " [" << dist << "]";
  }
  for (size_t i = keep; i < entries.size(); ++i)
    level->erase(*entries[i].subspace);
}

}  // namespace

size_t MdlCutPoint(const std::vector<size_t>& coverages_desc) {
  const size_t n = coverages_desc.size();
  if (n < 2) return n;
  // Prefix sums for O(1) means.
  std::vector<double> prefix(n + 1, 0.0);
  for (size_t i = 0; i < n; ++i)
    prefix[i + 1] = prefix[i] + static_cast<double>(coverages_desc[i]);
  auto code_length = [&](size_t cut) {
    // Selected = [0, cut), pruned = [cut, n). cut >= 1.
    double cl = 0.0;
    double mu_i = std::ceil(prefix[cut] / static_cast<double>(cut));
    cl += std::log2(mu_i + 1.0);
    for (size_t j = 0; j < cut; ++j)
      cl += std::log2(
          std::fabs(static_cast<double>(coverages_desc[j]) - mu_i) + 1.0);
    if (cut < n) {
      double mu_p =
          std::ceil((prefix[n] - prefix[cut]) / static_cast<double>(n - cut));
      cl += std::log2(mu_p + 1.0);
      for (size_t j = cut; j < n; ++j)
        cl += std::log2(
            std::fabs(static_cast<double>(coverages_desc[j]) - mu_p) + 1.0);
    }
    return cl;
  };
  size_t best_cut = n;
  double best_cl = code_length(n);
  for (size_t cut = 1; cut < n; ++cut) {
    double cl = code_length(cut);
    if (cl < best_cl) {  // Strict: ties keep more subspaces.
      best_cl = cl;
      best_cut = cut;
    }
  }
  return best_cut;
}

Result<MinerResult> MineDenseUnits(const std::vector<uint8_t>& cells,
                                   size_t num_points, size_t dims,
                                   const MinerParams& params) {
  if (params.xi < 2 || params.xi > 255)
    return Status::InvalidArgument("xi must be in [2, 255]");
  if (params.tau_percent <= 0.0 || params.tau_percent > 100.0)
    return Status::InvalidArgument("tau_percent must be in (0, 100]");
  if (num_points == 0) return Status::InvalidArgument("no points");
  if (cells.size() != num_points * dims)
    return Status::InvalidArgument("cell matrix shape mismatch");

  MinerResult result;
  result.threshold = std::max<size_t>(
      1, static_cast<size_t>(std::ceil(params.tau_percent / 100.0 *
                                       static_cast<double>(num_points))));
  size_t max_level = std::min(dims, MaxEncodableLevel(params.xi));
  if (params.max_level > 0) max_level = std::min(max_level, params.max_level);

  const size_t xi = params.xi;

  // ----- Level 1: histogram per dimension. -----
  DenseLevel level1;
  {
    std::vector<std::vector<uint32_t>> hist(dims,
                                            std::vector<uint32_t>(xi, 0));
    for (size_t p = 0; p < num_points; ++p) {
      const uint8_t* row = cells.data() + p * dims;
      for (size_t j = 0; j < dims; ++j) ++hist[j][row[j]];
    }
    for (size_t j = 0; j < dims; ++j) {
      DenseCellMap dense;
      for (size_t interval = 0; interval < xi; ++interval) {
        if (hist[j][interval] >= result.threshold)
          dense.emplace(interval, hist[j][interval]);
      }
      if (!dense.empty())
        level1.emplace(Subspace{static_cast<uint32_t>(j)}, std::move(dense));
    }
  }
  result.levels.push_back(std::move(level1));

  // ----- Levels 2..max: join, prune, count. -----
  while (result.levels.size() < max_level) {
    const DenseLevel& prev = result.levels.back();
    if (prev.empty()) break;
    DenseLevel candidates;
    size_t budget = params.max_candidates_per_level;
    size_t total_candidates = 0;
    for (auto it1 = prev.begin(); it1 != prev.end(); ++it1) {
      auto it2 = it1;
      for (++it2; it2 != prev.end(); ++it2) {
        Subspace joined;
        if (!TryJoinSubspaces(it1->first, it2->first, &joined)) {
          // Subspaces are sorted lexicographically, so once the prefix of
          // it2 diverges from it1 no later subspace can join either.
          // (Prefix equality is a prefix of the lexicographic order.)
          bool prefix_matches = true;
          for (size_t i = 0; i + 1 < it1->first.size(); ++i) {
            if (it1->first[i] != it2->first[i]) {
              prefix_matches = false;
              break;
            }
          }
          if (!prefix_matches) break;
          continue;
        }
        DenseCellMap cand;
        size_t added = GenerateCandidates(
            it1->second, it2->second, joined, prev, xi,
            budget - std::min(budget, total_candidates), &cand);
        total_candidates += added;
        if (!cand.empty()) candidates.emplace(std::move(joined),
                                              std::move(cand));
        if (total_candidates >= budget) {
          result.truncated = true;
          break;
        }
      }
      if (total_candidates >= budget) break;
    }
    if (result.truncated) {
      PROCLUS_LOG(Warning)
          << "CLIQUE candidate cap hit at level " << result.levels.size() + 1
          << " (" << total_candidates << " candidates); results truncated";
    }
    if (candidates.empty()) break;

    // Counting pass: one scan of the data per subspace with candidates.
    DenseLevel next;
    for (auto& [subspace, cand] : candidates) {
      for (size_t p = 0; p < num_points; ++p) {
        uint64_t key = PointCellKey(cells, dims, p, subspace, xi);
        auto it = cand.find(key);
        if (it != cand.end()) ++it->second;
      }
      DenseCellMap dense;
      for (const auto& [key, count] : cand)
        if (count >= result.threshold) dense.emplace(key, count);
      if (!dense.empty()) next.emplace(subspace, std::move(dense));
    }
    if (next.empty()) break;
    // MDL selectivity pruning before this level seeds the next one.
    if (params.mdl_prune) MdlPruneLevel(&next);
    result.levels.push_back(std::move(next));
  }
  return result;
}

}  // namespace proclus
