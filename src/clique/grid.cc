#include "clique/grid.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/parallel.h"

namespace proclus {

namespace {

Result<Grid> BuildFromBounds(std::vector<double> mins,
                             const std::vector<double>& maxs, size_t xi,
                             Grid (*make)(size_t, std::vector<double>,
                                          std::vector<double>)) {
  std::vector<double> width(mins.size());
  for (size_t j = 0; j < mins.size(); ++j) {
    double range = maxs[j] - mins[j];
    // Constant dimensions get a unit-width grid so every point lands in
    // interval 0.
    width[j] = range > 0.0 ? range / static_cast<double>(xi) : 1.0;
  }
  return make(xi, std::move(mins), std::move(width));
}

}  // namespace

Result<Grid> Grid::Build(const Dataset& dataset, size_t xi) {
  if (xi < 2 || xi > 255)
    return Status::InvalidArgument("xi must be in [2, 255]");
  if (dataset.empty()) return Status::InvalidArgument("dataset is empty");
  std::vector<double> mins, maxs;
  dataset.Bounds(&mins, &maxs);
  return BuildFromBounds(std::move(mins), maxs, xi,
                         [](size_t n, std::vector<double> lo,
                            std::vector<double> w) {
                           return Grid(n, std::move(lo), std::move(w));
                         });
}

Result<Grid> Grid::BuildFromSource(const PointSource& source, size_t xi) {
  if (xi < 2 || xi > 255)
    return Status::InvalidArgument("xi must be in [2, 255]");
  if (source.size() == 0)
    return Status::InvalidArgument("source is empty");
  const size_t d = source.dims();
  std::vector<double> mins(d, std::numeric_limits<double>::infinity());
  std::vector<double> maxs(d, -std::numeric_limits<double>::infinity());
  Status status = source.Scan(
      kDefaultBlockRows,
      [&](size_t, std::span<const double> data, size_t rows) {
        for (size_t r = 0; r < rows; ++r) {
          const double* point = data.data() + r * d;
          for (size_t j = 0; j < d; ++j) {
            if (point[j] < mins[j]) mins[j] = point[j];
            if (point[j] > maxs[j]) maxs[j] = point[j];
          }
        }
      });
  PROCLUS_RETURN_IF_ERROR(status);
  return BuildFromBounds(std::move(mins), maxs, xi,
                         [](size_t n, std::vector<double> lo,
                            std::vector<double> w) {
                           return Grid(n, std::move(lo), std::move(w));
                         });
}

Result<std::vector<uint8_t>> Grid::QuantizeSource(
    const PointSource& source) const {
  const size_t d = dims();
  if (source.dims() != d)
    return Status::InvalidArgument("source dimensionality mismatch");
  std::vector<uint8_t> cells(source.size() * d);
  Status status = source.Scan(
      kDefaultBlockRows,
      [&](size_t first, std::span<const double> data, size_t rows) {
        for (size_t r = 0; r < rows; ++r) {
          const double* point = data.data() + r * d;
          uint8_t* out = cells.data() + (first + r) * d;
          for (size_t j = 0; j < d; ++j) out[j] = Interval(j, point[j]);
        }
      });
  PROCLUS_RETURN_IF_ERROR(status);
  return cells;
}

uint8_t Grid::Interval(size_t dim, double value) const {
  PROCLUS_DCHECK(dim < dims());
  double offset = (value - lo_[dim]) / width_[dim];
  long idx = static_cast<long>(std::floor(offset));
  idx = std::clamp<long>(idx, 0, static_cast<long>(xi_) - 1);
  return static_cast<uint8_t>(idx);
}

void Grid::IntervalBounds(size_t dim, uint8_t idx, double* lo,
                          double* hi) const {
  PROCLUS_DCHECK(dim < dims());
  PROCLUS_DCHECK(idx < xi_);
  *lo = lo_[dim] + width_[dim] * static_cast<double>(idx);
  *hi = *lo + width_[dim];
}

std::vector<uint8_t> Grid::QuantizeAll(const Dataset& dataset) const {
  const size_t n = dataset.size();
  const size_t d = dims();
  PROCLUS_CHECK(dataset.dims() == d);
  std::vector<uint8_t> cells(n * d);
  for (size_t i = 0; i < n; ++i) {
    auto p = dataset.point(i);
    for (size_t j = 0; j < d; ++j) cells[i * d + j] = Interval(j, p[j]);
  }
  return cells;
}

}  // namespace proclus
