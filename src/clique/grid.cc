#include "clique/grid.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "data/engine.h"

namespace proclus {

namespace {

Result<Grid> BuildFromBounds(std::vector<double> mins,
                             const std::vector<double>& maxs, size_t xi,
                             Grid (*make)(size_t, std::vector<double>,
                                          std::vector<double>)) {
  std::vector<double> width(mins.size());
  for (size_t j = 0; j < mins.size(); ++j) {
    double range = maxs[j] - mins[j];
    // Constant dimensions get a unit-width grid so every point lands in
    // interval 0.
    width[j] = range > 0.0 ? range / static_cast<double>(xi) : 1.0;
  }
  return make(xi, std::move(mins), std::move(width));
}

// Per-dimension min/max over a scan. Min/max merging is associativity-
// free, so the bounds are bitwise identical for any block size or thread
// count.
class BoundsConsumer final : public ScanConsumer {
 public:
  Status Prepare(const ScanGeometry& geometry) override {
    dims_ = geometry.dims;
    partial_mins_.assign(geometry.num_blocks,
                         std::vector<double>(
                             dims_, std::numeric_limits<double>::infinity()));
    partial_maxs_.assign(
        geometry.num_blocks,
        std::vector<double>(dims_,
                            -std::numeric_limits<double>::infinity()));
    return Status::OK();
  }

  void ConsumeBlock(size_t block_index, size_t, std::span<const double> data,
                    size_t rows) override {
    std::vector<double>& mins = partial_mins_[block_index];
    std::vector<double>& maxs = partial_maxs_[block_index];
    for (size_t r = 0; r < rows; ++r) {
      const double* point = data.data() + r * dims_;
      for (size_t j = 0; j < dims_; ++j) {
        if (point[j] < mins[j]) mins[j] = point[j];
        if (point[j] > maxs[j]) maxs[j] = point[j];
      }
    }
  }

  Status Merge() override {
    mins_.assign(dims_, std::numeric_limits<double>::infinity());
    maxs_.assign(dims_, -std::numeric_limits<double>::infinity());
    for (size_t b = 0; b < partial_mins_.size(); ++b) {
      for (size_t j = 0; j < dims_; ++j) {
        if (partial_mins_[b][j] < mins_[j]) mins_[j] = partial_mins_[b][j];
        if (partial_maxs_[b][j] > maxs_[j]) maxs_[j] = partial_maxs_[b][j];
      }
    }
    return Status::OK();
  }

  // Explicit no-op: Prepare() overwrites every per-block partial that
  // Merge() reads (engine.h Reset contract).
  void Reset() override {}

  std::vector<double> TakeMins() { return std::move(mins_); }
  const std::vector<double>& maxs() const { return maxs_; }

 private:
  size_t dims_ = 0;
  std::vector<std::vector<double>> partial_mins_;   // [block][dim]
  std::vector<std::vector<double>> partial_maxs_;   // [block][dim]
  std::vector<double> mins_;
  std::vector<double> maxs_;
};

// Per-point interval quantization; writes are disjoint per row.
class QuantizeConsumer final : public ScanConsumer {
 public:
  explicit QuantizeConsumer(const Grid* grid) : grid_(grid) {}

  Status Prepare(const ScanGeometry& geometry) override {
    dims_ = geometry.dims;
    cells_.resize(geometry.rows * dims_);
    return Status::OK();
  }

  void ConsumeBlock(size_t, size_t first_row, std::span<const double> data,
                    size_t rows) override {
    for (size_t r = 0; r < rows; ++r) {
      const double* point = data.data() + r * dims_;
      uint8_t* out = cells_.data() + (first_row + r) * dims_;
      for (size_t j = 0; j < dims_; ++j)
        out[j] = grid_->Interval(j, point[j]);
    }
  }

  Status Merge() override { return Status::OK(); }
  // Explicit no-op: Prepare() resizes cells_ and every row is assigned
  // exactly once per scan (engine.h Reset contract).
  void Reset() override {}

  std::vector<uint8_t> TakeCells() { return std::move(cells_); }

 private:
  const Grid* grid_;
  size_t dims_ = 0;
  std::vector<uint8_t> cells_;
};

}  // namespace

Result<Grid> Grid::Build(const Dataset& dataset, size_t xi) {
  if (xi < 2 || xi > 255)
    return Status::InvalidArgument("xi must be in [2, 255]");
  if (dataset.empty()) return Status::InvalidArgument("dataset is empty");
  std::vector<double> mins, maxs;
  dataset.Bounds(&mins, &maxs);
  return BuildFromBounds(std::move(mins), maxs, xi,
                         [](size_t n, std::vector<double> lo,
                            std::vector<double> w) {
                           return Grid(n, std::move(lo), std::move(w));
                         });
}

Result<Grid> Grid::BuildFromSource(const PointSource& source, size_t xi) {
  if (xi < 2 || xi > 255)
    return Status::InvalidArgument("xi must be in [2, 255]");
  if (source.size() == 0)
    return Status::InvalidArgument("source is empty");
  BoundsConsumer bounds;
  PROCLUS_RETURN_IF_ERROR(ScanExecutor(ScanOptions{}).Run(source, {&bounds}));
  return BuildFromBounds(bounds.TakeMins(), bounds.maxs(), xi,
                         [](size_t n, std::vector<double> lo,
                            std::vector<double> w) {
                           return Grid(n, std::move(lo), std::move(w));
                         });
}

Result<std::vector<uint8_t>> Grid::QuantizeSource(
    const PointSource& source) const {
  if (source.dims() != dims())
    return Status::InvalidArgument("source dimensionality mismatch");
  QuantizeConsumer quantize(this);
  PROCLUS_RETURN_IF_ERROR(
      ScanExecutor(ScanOptions{}).Run(source, {&quantize}));
  return quantize.TakeCells();
}

uint8_t Grid::Interval(size_t dim, double value) const {
  PROCLUS_DCHECK(dim < dims());
  double offset = (value - lo_[dim]) / width_[dim];
  long idx = static_cast<long>(std::floor(offset));
  idx = std::clamp<long>(idx, 0, static_cast<long>(xi_) - 1);
  return static_cast<uint8_t>(idx);
}

void Grid::IntervalBounds(size_t dim, uint8_t idx, double* lo,
                          double* hi) const {
  PROCLUS_DCHECK(dim < dims());
  PROCLUS_DCHECK(idx < xi_);
  *lo = lo_[dim] + width_[dim] * static_cast<double>(idx);
  *hi = *lo + width_[dim];
}

std::vector<uint8_t> Grid::QuantizeAll(const Dataset& dataset) const {
  const size_t n = dataset.size();
  const size_t d = dims();
  PROCLUS_CHECK(dataset.dims() == d);
  std::vector<uint8_t> cells(n * d);
  for (size_t i = 0; i < n; ++i) {
    auto p = dataset.point(i);
    for (size_t j = 0; j < d; ++j) cells[i * d + j] = Interval(j, p[j]);
  }
  return cells;
}

}  // namespace proclus
