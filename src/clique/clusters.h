// Cluster formation within a subspace: dense units are nodes of a graph
// whose edges connect units sharing a (level-1)-dimensional face (interval
// indices equal on all dimensions but one, where they differ by exactly 1);
// clusters are the connected components. Each component additionally gets
// a greedy cover of axis-parallel hyper-rectangular regions, the cluster
// description CLIQUE reports.

#ifndef PROCLUS_CLIQUE_CLUSTERS_H_
#define PROCLUS_CLIQUE_CLUSTERS_H_

#include <cstdint>
#include <vector>

#include "clique/dense_units.h"
#include "clique/subspace.h"

namespace proclus {

/// An axis-parallel rectangular block of units: inclusive interval ranges,
/// one per subspace dimension.
struct UnitRegion {
  std::vector<std::pair<uint8_t, uint8_t>> ranges;

  /// Number of units inside the region.
  size_t UnitCount() const {
    size_t n = 1;
    for (auto [lo, hi] : ranges) n *= static_cast<size_t>(hi - lo + 1);
    return n;
  }
};

/// One connected component of dense units in a subspace.
struct UnitCluster {
  Subspace subspace;
  /// Cell keys of the component's units (sorted).
  std::vector<uint64_t> cells;
  /// Greedy rectangular cover of the component.
  std::vector<UnitRegion> regions;
  /// Total points in the component's units (sum of unit counts; each point
  /// lies in exactly one unit of a given subspace, so this is exact).
  size_t point_count = 0;
};

/// Splits the dense units of one subspace into connected components and
/// builds a greedy region cover for each. Deterministic (components and
/// regions ordered by smallest cell key).
std::vector<UnitCluster> ConnectedComponents(const Subspace& subspace,
                                             const DenseCellMap& units,
                                             size_t xi);

/// Greedy cover of a set of cells (all in one component) by maximal
/// rectangles: repeatedly grow an uncovered cell into a maximal rectangle
/// fully contained in the cell set, dimension by dimension. Exposed for
/// testing.
std::vector<UnitRegion> GreedyCover(const std::vector<uint64_t>& cells,
                                    size_t level, size_t xi);

}  // namespace proclus

#endif  // PROCLUS_CLIQUE_CLUSTERS_H_
