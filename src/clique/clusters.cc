#include "clique/clusters.h"

#include <algorithm>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"

namespace proclus {

namespace {

// Powers of xi per position: stride[pos] is the key increment of +1 on
// interval `pos`.
std::vector<uint64_t> PositionStrides(size_t level, size_t xi) {
  std::vector<uint64_t> strides(level, 1);
  for (size_t i = level; i-- > 1;) strides[i - 1] = strides[i] * xi;
  return strides;
}

}  // namespace

std::vector<UnitRegion> GreedyCover(const std::vector<uint64_t>& cells,
                                    size_t level, size_t xi) {
  std::unordered_set<uint64_t> cell_set(cells.begin(), cells.end());
  std::unordered_set<uint64_t> covered;
  std::vector<uint64_t> strides = PositionStrides(level, xi);

  // Enumerates all cell keys inside `ranges`, invoking fn(key); returns
  // false early if fn returns false.
  auto for_each_in_region =
      [&](const std::vector<std::pair<uint8_t, uint8_t>>& ranges,
          auto&& fn) -> bool {
    std::vector<uint8_t> cursor(level);
    for (size_t i = 0; i < level; ++i) cursor[i] = ranges[i].first;
    while (true) {
      uint64_t key = 0;
      for (size_t i = 0; i < level; ++i) key = key * xi + cursor[i];
      if (!fn(key)) return false;
      // Odometer increment.
      size_t pos = level;
      while (pos-- > 0) {
        if (cursor[pos] < ranges[pos].second) {
          ++cursor[pos];
          for (size_t r = pos + 1; r < level; ++r)
            cursor[r] = ranges[r].first;
          break;
        }
        if (pos == 0) return true;
      }
    }
  };

  std::vector<UnitRegion> regions;
  // Deterministic seed order: ascending cell key.
  std::vector<uint64_t> order(cells);
  std::sort(order.begin(), order.end());
  for (uint64_t seed : order) {
    if (covered.count(seed)) continue;
    std::vector<uint8_t> intervals = DecodeCell(seed, level, xi);
    UnitRegion region;
    region.ranges.resize(level);
    for (size_t i = 0; i < level; ++i)
      region.ranges[i] = {intervals[i], intervals[i]};
    // Grow greedily: for each dimension, extend as far as possible in both
    // directions while the whole slab stays inside the dense cell set.
    bool grew = true;
    while (grew) {
      grew = false;
      for (size_t pos = 0; pos < level; ++pos) {
        // Try hi+1.
        while (region.ranges[pos].second + 1 < static_cast<int>(xi)) {
          auto slab = region.ranges;
          slab[pos] = {static_cast<uint8_t>(region.ranges[pos].second + 1),
                       static_cast<uint8_t>(region.ranges[pos].second + 1)};
          bool all = for_each_in_region(slab, [&](uint64_t key) {
            return cell_set.count(key) > 0;
          });
          if (!all) break;
          ++region.ranges[pos].second;
          grew = true;
        }
        // Try lo-1.
        while (region.ranges[pos].first > 0) {
          auto slab = region.ranges;
          slab[pos] = {static_cast<uint8_t>(region.ranges[pos].first - 1),
                       static_cast<uint8_t>(region.ranges[pos].first - 1)};
          bool all = for_each_in_region(slab, [&](uint64_t key) {
            return cell_set.count(key) > 0;
          });
          if (!all) break;
          --region.ranges[pos].first;
          grew = true;
        }
      }
    }
    for_each_in_region(region.ranges, [&](uint64_t key) {
      covered.insert(key);
      return true;
    });
    regions.push_back(std::move(region));
  }
  return regions;
}

std::vector<UnitCluster> ConnectedComponents(const Subspace& subspace,
                                             const DenseCellMap& units,
                                             size_t xi) {
  const size_t level = subspace.size();
  std::vector<uint64_t> strides = PositionStrides(level, xi);

  // Union-find over the cell keys.
  std::unordered_map<uint64_t, uint64_t> parent;
  parent.reserve(units.size());
  for (const auto& [key, count] : units) parent.emplace(key, key);
  std::function<uint64_t(uint64_t)> find = [&](uint64_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto unite = [&](uint64_t a, uint64_t b) {
    uint64_t ra = find(a), rb = find(b);
    if (ra != rb) parent[std::max(ra, rb)] = std::min(ra, rb);
  };

  for (const auto& [key, count] : units) {
    std::vector<uint8_t> intervals = DecodeCell(key, level, xi);
    for (size_t pos = 0; pos < level; ++pos) {
      if (intervals[pos] + 1 < static_cast<int>(xi)) {
        uint64_t neighbor = key + strides[pos];
        if (parent.count(neighbor)) unite(key, neighbor);
      }
      // The -1 neighbor is handled symmetrically when visiting it.
    }
  }

  // Group by root.
  std::unordered_map<uint64_t, size_t> root_to_cluster;
  std::vector<UnitCluster> clusters;
  for (const auto& [key, count] : units) {
    uint64_t root = find(key);
    auto [it, inserted] =
        root_to_cluster.emplace(root, clusters.size());
    if (inserted) {
      clusters.emplace_back();
      clusters.back().subspace = subspace;
    }
    UnitCluster& c = clusters[it->second];
    c.cells.push_back(key);
    c.point_count += count;
  }
  for (auto& c : clusters) std::sort(c.cells.begin(), c.cells.end());
  // Deterministic cluster order: by smallest cell key.
  std::sort(clusters.begin(), clusters.end(),
            [](const UnitCluster& a, const UnitCluster& b) {
              return a.cells.front() < b.cells.front();
            });
  for (auto& c : clusters) c.regions = GreedyCover(c.cells, level, xi);
  return clusters;
}

}  // namespace proclus
