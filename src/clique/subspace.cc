#include "clique/subspace.h"

#include <algorithm>
#include <cmath>

namespace proclus {

size_t MaxEncodableLevel(size_t xi) {
  PROCLUS_CHECK(xi >= 2);
  size_t level = 0;
  // Largest L with xi^L <= 2^64: accumulate multiplicatively with overflow
  // guard.
  unsigned __int128 acc = 1;
  const unsigned __int128 limit = (unsigned __int128)1 << 64;
  while (true) {
    acc *= xi;
    if (acc > limit) break;
    ++level;
  }
  return level;
}

std::vector<uint8_t> DecodeCell(uint64_t key, size_t level, size_t xi) {
  std::vector<uint8_t> out(level);
  for (size_t i = level; i-- > 0;) {
    out[i] = static_cast<uint8_t>(key % xi);
    key /= xi;
  }
  return out;
}

uint8_t CellIntervalAt(uint64_t key, size_t level, size_t pos, size_t xi) {
  PROCLUS_DCHECK(pos < level);
  for (size_t i = level - 1; i > pos; --i) key /= xi;
  return static_cast<uint8_t>(key % xi);
}

bool TryJoinSubspaces(const Subspace& a, const Subspace& b, Subspace* joined) {
  PROCLUS_DCHECK(a.size() == b.size());
  PROCLUS_DCHECK(!a.empty());
  const size_t prefix = a.size() - 1;
  for (size_t i = 0; i < prefix; ++i)
    if (a[i] != b[i]) return false;
  if (a.back() >= b.back()) return false;
  *joined = a;
  joined->push_back(b.back());
  return true;
}

std::vector<Subspace> SubspaceProjections(const Subspace& s) {
  std::vector<Subspace> out;
  out.reserve(s.size());
  for (size_t drop = 0; drop < s.size(); ++drop) {
    Subspace proj;
    proj.reserve(s.size() - 1);
    for (size_t i = 0; i < s.size(); ++i)
      if (i != drop) proj.push_back(s[i]);
    out.push_back(std::move(proj));
  }
  return out;
}

uint64_t ProjectCell(uint64_t key, const Subspace& from, const Subspace& onto,
                     size_t xi) {
  std::vector<uint8_t> intervals = DecodeCell(key, from.size(), xi);
  std::vector<uint8_t> projected;
  projected.reserve(onto.size());
  size_t fi = 0;
  for (uint32_t dim : onto) {
    while (fi < from.size() && from[fi] != dim) ++fi;
    PROCLUS_CHECK(fi < from.size());
    projected.push_back(intervals[fi]);
  }
  return EncodeCell(projected, xi);
}

}  // namespace proclus
