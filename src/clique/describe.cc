#include "clique/describe.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"

namespace proclus {

std::vector<UnitRegion> MergeAdjacentRegions(
    std::vector<UnitRegion> regions) {
  bool merged = true;
  while (merged) {
    merged = false;
    for (size_t a = 0; a < regions.size() && !merged; ++a) {
      for (size_t b = a + 1; b < regions.size() && !merged; ++b) {
        const auto& ra = regions[a].ranges;
        const auto& rb = regions[b].ranges;
        PROCLUS_CHECK(ra.size() == rb.size());
        // Regions merge only when they differ on exactly one dimension.
        size_t diff_pos = 0;
        size_t diffs = 0;
        for (size_t pos = 0; pos < ra.size(); ++pos) {
          if (ra[pos] != rb[pos]) {
            ++diffs;
            diff_pos = pos;
          }
        }
        if (diffs != 1) continue;
        // Mergeable when the differing ranges touch or overlap.
        auto [alo, ahi] = ra[diff_pos];
        auto [blo, bhi] = rb[diff_pos];
        if (static_cast<int>(blo) > static_cast<int>(ahi) + 1 ||
            static_cast<int>(alo) > static_cast<int>(bhi) + 1)
          continue;
        regions[a].ranges[diff_pos] = {std::min(alo, blo),
                                       std::max(ahi, bhi)};
        regions.erase(regions.begin() + static_cast<long>(b));
        merged = true;
      }
    }
  }
  return regions;
}

std::vector<RegionPredicate> DescribeCluster(const CliqueCluster& cluster,
                                             const Grid& grid,
                                             bool merge) {
  std::vector<UnitRegion> regions = cluster.regions;
  if (merge) regions = MergeAdjacentRegions(std::move(regions));
  std::vector<RegionPredicate> description;
  description.reserve(regions.size());
  for (const UnitRegion& region : regions) {
    RegionPredicate predicate;
    predicate.reserve(region.ranges.size());
    for (size_t pos = 0; pos < region.ranges.size(); ++pos) {
      uint32_t dim = cluster.subspace[pos];
      double lo, unused, hi;
      grid.IntervalBounds(dim, region.ranges[pos].first, &lo, &unused);
      grid.IntervalBounds(dim, region.ranges[pos].second, &unused, &hi);
      predicate.push_back({dim, lo, hi});
    }
    description.push_back(std::move(predicate));
  }
  return description;
}

namespace {

std::string FormatNumber(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.4g", value);
  return buffer;
}

}  // namespace

std::string RenderDnf(const std::vector<RegionPredicate>& description,
                      const std::vector<std::string>& dim_names) {
  std::string out;
  for (size_t r = 0; r < description.size(); ++r) {
    if (r) out += " v ";
    out += "(";
    for (size_t p = 0; p < description[r].size(); ++p) {
      if (p) out += " ^ ";
      const IntervalPredicate& predicate = description[r][p];
      std::string name =
          predicate.dim < dim_names.size()
              ? dim_names[predicate.dim]
              : "d" + std::to_string(predicate.dim + 1);
      out += "(" + FormatNumber(predicate.lo) + " <= " + name + " < " +
             FormatNumber(predicate.hi) + ")";
    }
    out += ")";
  }
  return out;
}

}  // namespace proclus
