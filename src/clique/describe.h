// Cluster descriptions: CLIQUE reports each cluster as a DNF expression
// over interval predicates — a disjunction of the greedy rectangular
// regions, each region a conjunction of per-dimension interval ranges,
// e.g. ((30 <= age < 50) ^ (4 <= salary < 8)) v ((40 <= age < 60) ^ ...).
// This module renders those expressions from the mined regions and the
// grid geometry, merging adjacent co-linear regions first so the
// expression is closer to minimal.

#ifndef PROCLUS_CLIQUE_DESCRIBE_H_
#define PROCLUS_CLIQUE_DESCRIBE_H_

#include <string>
#include <vector>

#include "clique/clique.h"
#include "clique/grid.h"

namespace proclus {

/// One conjunct of the DNF: numeric bounds per subspace dimension.
struct IntervalPredicate {
  uint32_t dim = 0;
  double lo = 0.0;
  double hi = 0.0;
};

/// One region of the description: a conjunction of interval predicates.
using RegionPredicate = std::vector<IntervalPredicate>;

/// Merges regions that agree on every dimension range except one where
/// they are adjacent or overlapping (a simple pass toward a minimal
/// cover; repeated until no merge applies). Exposed for testing on raw
/// unit regions.
std::vector<UnitRegion> MergeAdjacentRegions(
    std::vector<UnitRegion> regions);

/// Converts a cluster's unit regions into numeric interval predicates
/// using the grid geometry.
std::vector<RegionPredicate> DescribeCluster(const CliqueCluster& cluster,
                                             const Grid& grid,
                                             bool merge = true);

/// Renders the DNF string for a cluster. Dimension names are taken from
/// `dim_names` when provided (1-based "d<i>" otherwise). Example output:
///   ((30 <= x1 < 50) ^ (4 <= x2 < 8)) v ((50 <= x1 < 60) ^ (4 <= x2 < 6))
std::string RenderDnf(const std::vector<RegionPredicate>& description,
                      const std::vector<std::string>& dim_names = {});

}  // namespace proclus

#endif  // PROCLUS_CLIQUE_DESCRIBE_H_
