#!/usr/bin/env python3
"""Aggregates gcov coverage for src/ from a PROCLUS_COVERAGE build.

Workflow (the `coverage` presets wire steps 1-3):

    cmake --preset coverage && cmake --build build-coverage -j
    ctest --test-dir build-coverage -L 'unit|parallel|fault'
    python3 tools/coverage_report.py --build build-coverage

The script walks the build tree for .gcda counter files, runs
`gcov --json-format` on their companion .gcno graphs, and folds the
per-translation-unit JSON into one line/branch table for files under
src/ — no gcovr/lcov dependency, just gcov (ships with gcc) and the
stdlib. Exit is non-zero when no counters are found (tests did not run)
or, with --fail-under-line, when total line coverage drops below the
given percentage.
"""

import argparse
import collections
import glob
import gzip
import json
import os
import shutil
import subprocess
import sys
import tempfile


def find_gcov():
    exe = os.environ.get("GCOV", "") or shutil.which("gcov")
    if not exe:
        sys.stderr.write(
            "coverage_report: no `gcov` on PATH (it ships with gcc). "
            "Set GCOV=/path/to/gcov or install gcc.\n")
        sys.exit(2)
    return exe


def run_gcov(gcov, gcda_paths, out_dir):
    """Runs gcov in JSON mode over a batch of .gcda files; returns the
    parsed JSON documents (gcov writes one .gcov.json.gz per input)."""
    subprocess.run(
        [gcov, "--json-format", "--branch-probabilities"]
        + [os.path.abspath(p) for p in gcda_paths],
        cwd=out_dir, stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL, check=False)
    docs = []
    for path in glob.glob(os.path.join(out_dir, "*.gcov.json.gz")):
        try:
            with gzip.open(path, "rt", encoding="utf-8") as f:
                docs.append(json.load(f))
        except (OSError, json.JSONDecodeError) as exc:
            sys.stderr.write(f"coverage_report: skipping {path}: {exc}\n")
        os.unlink(path)
    return docs


class FileCov:
    __slots__ = ("lines", "branches")

    def __init__(self):
        # line number -> max execution count seen across TUs
        self.lines = {}
        # (line, branch index) -> taken?
        self.branches = {}


def fold(docs, repo_root, stats):
    repo_root = os.path.abspath(repo_root)
    for doc in docs:
        for f in doc.get("files", []):
            path = f.get("file", "")
            if not os.path.isabs(path):
                path = os.path.join(repo_root, path)
            rel = os.path.relpath(os.path.abspath(path), repo_root)
            if not rel.startswith("src" + os.sep):
                continue
            cov = stats[rel]
            for line in f.get("lines", []):
                no = line.get("line_number", 0)
                count = line.get("count", 0)
                cov.lines[no] = max(cov.lines.get(no, 0), count)
                for bi, br in enumerate(line.get("branches", [])):
                    key = (no, bi)
                    taken = br.get("count", 0) > 0
                    cov.branches[key] = cov.branches.get(key, False) or taken


def percent(hit, total):
    return 100.0 * hit / total if total else 100.0


def report(stats, json_path):
    rows = []
    t_lines = t_lines_hit = t_br = t_br_hit = 0
    for rel in sorted(stats):
        cov = stats[rel]
        lines = len(cov.lines)
        lines_hit = sum(1 for c in cov.lines.values() if c > 0)
        br = len(cov.branches)
        br_hit = sum(1 for taken in cov.branches.values() if taken)
        t_lines += lines
        t_lines_hit += lines_hit
        t_br += br
        t_br_hit += br_hit
        rows.append((rel, lines_hit, lines, br_hit, br))
    width = max((len(r[0]) for r in rows), default=20)
    print(f"{'file':<{width}}  {'lines':>12}  {'line%':>6}  "
          f"{'branches':>12}  {'brch%':>6}")
    for rel, lh, ln, bh, bn in rows:
        print(f"{rel:<{width}}  {lh:>5}/{ln:<6}  "
              f"{percent(lh, ln):>5.1f}%  {bh:>5}/{bn:<6}  "
              f"{percent(bh, bn):>5.1f}%")
    print(f"{'TOTAL':<{width}}  {t_lines_hit:>5}/{t_lines:<6}  "
          f"{percent(t_lines_hit, t_lines):>5.1f}%  "
          f"{t_br_hit:>5}/{t_br:<6}  {percent(t_br_hit, t_br):>5.1f}%")
    if json_path:
        doc = {
            "total": {
                "lines": t_lines, "lines_hit": t_lines_hit,
                "line_percent": round(percent(t_lines_hit, t_lines), 2),
                "branches": t_br, "branches_hit": t_br_hit,
                "branch_percent": round(percent(t_br_hit, t_br), 2),
            },
            "files": [
                {"file": rel, "lines": ln, "lines_hit": lh,
                 "branches": bn, "branches_hit": bh}
                for rel, lh, ln, bh, bn in rows
            ],
        }
        with open(json_path, "w", encoding="utf-8") as f:
            json.dump(doc, f, indent=2)
            f.write("\n")
    return percent(t_lines_hit, t_lines)


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Aggregate gcov line/branch coverage for src/")
    parser.add_argument("--build", required=True,
                        help="build directory of a PROCLUS_COVERAGE "
                             "configure (e.g. build-coverage)")
    parser.add_argument("--root", default=".",
                        help="repo root (default: cwd)")
    parser.add_argument("--json", default="", metavar="FILE",
                        help="also write the summary as JSON")
    parser.add_argument("--fail-under-line", type=float, default=0.0,
                        metavar="PCT",
                        help="exit 1 if total line coverage is below PCT")
    args = parser.parse_args(argv)

    gcda = sorted(glob.glob(os.path.join(args.build, "**", "*.gcda"),
                            recursive=True))
    if not gcda:
        sys.stderr.write(
            f"coverage_report: no .gcda files under {args.build}. "
            "Configure with -DPROCLUS_COVERAGE=ON (the `coverage` "
            "preset) and run the tests first.\n")
        return 2
    gcov = find_gcov()
    stats = collections.defaultdict(FileCov)
    with tempfile.TemporaryDirectory(prefix="proclus_cov_") as tmp:
        # Batch to keep command lines bounded.
        for i in range(0, len(gcda), 64):
            docs = run_gcov(gcov, gcda[i:i + 64], tmp)
            fold(docs, args.root, stats)
    if not stats:
        sys.stderr.write(
            "coverage_report: counters found, but none map to src/ — "
            "was the build configured from this repo root?\n")
        return 2
    line_pct = report(stats, args.json)
    print(f"coverage_report: {len(gcda)} counter files aggregated",
          file=sys.stderr)
    if args.fail_under_line and line_pct < args.fail_under_line:
        sys.stderr.write(
            f"coverage_report: line coverage {line_pct:.1f}% is below "
            f"--fail-under-line {args.fail_under_line:.1f}%\n")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
