#!/usr/bin/env python3
"""Repo-specific lint for the PROCLUS reproduction.

Enforces invariants that no generic tool knows about:

  banned-randomness   rand()/srand()/std::random_device/time()-seeding are
                      forbidden outside src/common/rng.cc: every randomized
                      component must draw from the seeded proclus::Rng so
                      results are reproducible bit-for-bit.
  iostream-in-library src/ library code must not write to std::cout or
                      std::cerr; diagnostics go through common/logging.h so
                      harness output stays machine-parseable.
  check-in-status-fn  PROCLUS_CHECK aborts the process, so inside a function
                      returning Status/Result it is only acceptable for
                      internal invariants, never user-input validation.
                      Each such use must carry an `// invariant:` comment
                      (same line or the line above) justifying why it cannot
                      be triggered by caller-supplied data.
  include-guard       Header guards must be PROCLUS_<DIR>_<FILE>_H_ derived
                      from the path (src/ stripped, bench/ kept).
  nodiscard-status    Status and Result must stay declared [[nodiscard]] so
                      the compiler rejects silently discarded errors
                      (-Werror turns those warnings into build failures).
  result-unchecked    RETIRED — superseded by the `status-flow` rule in
                      tools/analyzer, which checks the same invariant
                      (no Result access before an ok() check) on the
                      statement tree instead of with textual precedence,
                      so a check in a sibling branch no longer counts as
                      a guard. See tools/analyzer/rules.py.
  raw-scan            Direct PointSource::Scan / ForEachBlock calls are
                      forbidden outside the scan engine itself (src/data/
                      engine.cc, src/data/point_source.cc, and the
                      fault-injection decorator src/data/fault_source.cc):
                      every data pass in src/, bench/, and examples/ must go
                      through a ScanConsumer driven by ScanExecutor::Run, so
                      scans can be fused and the RunStats scan/byte counters
                      stay truthful.
  raw-ifstream        Direct std::ifstream use in src/data is forbidden
                      outside binary_io.cc and point_source.cc: every other
                      reader must go through ReadFileBytes (data/binary_io.h)
                      or the PointSource layer, which report short reads and
                      corruption as detailed Statuses (path, byte offset,
                      expected/actual sizes) instead of silently truncating.
  segmental-dimension-set
                      Calling the DimensionSet overload of
                      ManhattanSegmentalDistance inside a for/while loop in
                      src/core or src/distance. That overload walks the
                      bitset per call; hot loops must hoist the index list
                      (dims.ToVector()) out of the loop once and call the
                      span overload, which is allocation-free and
                      bit-identical. Applies to arguments declared with a
                      DimensionSet type in the same file.
  unordered-iteration A range-for over a std::unordered_map/set (declared in
                      the same file, directly or through a local alias)
                      whose body feeds an ordered sink — output streams,
                      push_back/emplace_back, or the seeded Rng. Hash-map
                      iteration order is implementation-defined, so such
                      loops silently break bit-for-bit reproducibility.
                      Sort the keys first, or iterate an ordered mirror.
  raw-sync            Raw std::mutex / std::lock_guard / std::unique_lock /
                      std::condition_variable (& friends) are forbidden in
                      src/, bench/, and examples/ outside common/sync.h:
                      shared state must synchronize through the annotated
                      proclus::Mutex / MutexLock / CondVar wrappers so the
                      Clang thread-safety analysis (the `tsa` preset) can
                      see every acquire/release. GCC builds compile the
                      annotations away, so this rule is what keeps
                      non-Clang trees on the annotated primitives.
  atomic-order        Every std::atomic declaration in src/ must name its
                      memory-order discipline in a trailing `// order:`
                      comment (same line or the comment block directly
                      above). An undocumented atomic is an unreviewable
                      one: the next editor cannot tell relaxed-by-design
                      from seq-cst-by-accident. Prefer GuardedCounter
                      (common/sync.h) for plain statistics counters.
  atomic-rmw          Bare read-modify-write operators (++, --, +=, -=) on
                      a variable declared std::atomic in the same src/
                      file. The operator spelling is sequentially
                      consistent, almost never intended in hot paths, and
                      hides the ordering decision atomic-order exists to
                      surface; write fetch_add(n, <order>) explicitly.
  sync-annotation     Every proclus::Mutex declared in src/ must appear in
                      at least one thread-safety annotation in the same
                      file (PROCLUS_GUARDED_BY / REQUIRES / ACQUIRE /
                      RELEASE / EXCLUDES / ACQUIRED_BEFORE / ...): a mutex
                      that guards nothing the analysis can check is
                      documentation debt, not a contract.
  raw-sleep           Bare std::this_thread::sleep_for/sleep_until in src/,
                      bench/, or examples/ outside common/cancel.h. A raw
                      sleep can be neither woken by a CancelToken nor
                      truncated by a Deadline, so it would break the
                      one-block cancellation latency bound (DESIGN.md §13).
                      Sleep through InterruptibleSleep / HangUntilCancelled
                      (common/cancel.h), which park on the token's condvar
                      and honor the deadline; cancel.h itself is the one
                      place the primitive sleeps live.

Any line may opt out of one rule with a trailing `// lint:allow(<rule>)`
comment; use sparingly and justify in a neighboring comment.

Usage:
  tools/lint.py [--root DIR]   # lint the tree, exit non-zero on findings
  tools/lint.py --self-test    # run the built-in fixture tests
"""

import argparse
import os
import re
import sys
import tempfile

SOURCE_DIRS = ("src", "tests", "bench", "examples", "tools", "fuzz")
SOURCE_EXTS = (".cc", ".cpp", ".h", ".hpp")

# Files allowed to reference OS randomness / wall-clock seeding: the one
# place that defines the seeded generator.
RNG_ALLOWLIST = (os.path.join("src", "common", "rng.cc"),
                 os.path.join("src", "common", "rng.h"))

BANNED_RANDOMNESS = [
    (re.compile(r"std\s*::\s*random_device"), "std::random_device"),
    (re.compile(r"(?<![\w:])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"(?<![\w:])time\s*\(\s*(?:NULL|nullptr|0)\s*\)"),
     "time()-based seeding"),
]

IOSTREAM_RE = re.compile(r"std\s*::\s*(cout|cerr|clog)\b")

# --- raw-scan ---------------------------------------------------------------

# Directories whose data passes must run on the scan executor. Tests and
# tools may exercise the raw API (the executor's own tests have to).
RAW_SCAN_DIRS = ("src", "bench", "examples")

# The scan machinery itself: the executor that drives consumers over
# Scan(), the PointSource implementations, the fault-injection decorator
# (which must drive the inner source's raw scan to simulate mid-scan
# failures), and the shard set (whose glued Scan restitches the raw
# per-shard scans into whole-set blocks).
RAW_SCAN_ALLOWLIST = (os.path.join("src", "data", "engine.cc"),
                      os.path.join("src", "data", "point_source.cc"),
                      os.path.join("src", "data", "fault_source.cc"),
                      os.path.join("src", "data", "sharded_source.cc"))

RAW_SCAN_RE = re.compile(r"(?:\.|->)\s*Scan\s*\(|\bForEachBlock\s*\(")

# --- raw-ifstream -----------------------------------------------------------

# The only src/data files that may open files for reading directly: the
# checked binary reader (which implements ReadFileBytes) and the
# PointSource layer. Everything else must consume their detailed-Status
# I/O instead of re-inventing silent-truncation reads.
RAW_IFSTREAM_DIR = os.path.join("src", "data")
RAW_IFSTREAM_ALLOWLIST = (os.path.join("src", "data", "binary_io.cc"),
                          os.path.join("src", "data", "point_source.cc"))

RAW_IFSTREAM_RE = re.compile(r"std\s*::\s*ifstream\b")

# A function definition returning Status or Result<...>: return type at the
# start of a (possibly indented) line, then a qualified name and parameter
# list. Good enough for this codebase's Google-style formatting.
STATUS_FN_RE = re.compile(
    r"^[ \t]*(?:static\s+|inline\s+)*(?:Status|Result<[^;={}]*>)\s+"
    r"[A-Za-z_][\w:]*\s*\(",
    re.MULTILINE)

ALLOW_RE = re.compile(r"lint:allow\(([a-z-]+)\)")

GUARD_DIRS = ("src", "bench", "fuzz")

# Directories where determinism bugs are real bugs (library, bench harness,
# fuzz harness). Tests intentionally do order-sensitive things as assertions,
# so they are exempt.
LIBRARY_RULE_DIRS = ("src", "bench", "fuzz")

# --- segmental-dimension-set ------------------------------------------------

# Hot-path directories where per-call bitset walks are a real regression:
# the PROCLUS passes and the distance kernels themselves.
SEGMENTAL_RULE_DIRS = (os.path.join("src", "core"),
                       os.path.join("src", "distance"))

# An identifier declared (or received as a parameter) with a DimensionSet
# type: `DimensionSet dims`, `const DimensionSet& dims`, `DimensionSet*`.
DIMENSION_SET_DECL_RE = re.compile(
    r"\bDimensionSet\b\s*(?:const\b\s*)?[&*]?\s*([A-Za-z_]\w*)")

SEGMENTAL_CALL_RE = re.compile(r"\bManhattanSegmentalDistance\s*\(")

# --- raw-sync ---------------------------------------------------------------

# Library, bench, and example code must use the annotated primitives from
# common/sync.h; tests and tools may drive the raw std API directly (the
# sync wrappers' own tests have to).
RAW_SYNC_DIRS = ("src", "bench", "examples")
RAW_SYNC_ALLOWLIST = (os.path.join("src", "common", "sync.h"),)

RAW_SYNC_RE = re.compile(
    r"std\s*::\s*(mutex|recursive_mutex|timed_mutex|recursive_timed_mutex"
    r"|shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock"
    r"|shared_lock|condition_variable|condition_variable_any)\b")

# --- raw-sleep ---------------------------------------------------------------

# Every blocking wait in the library must be interruptible: a bare
# this_thread sleep cannot be woken by a CancelToken or truncated by a
# Deadline, so a cancelled run would still serve the full sleep. The only
# file that may sleep directly is common/cancel.h, which implements the
# interruptible primitives everything else must use.
RAW_SLEEP_DIRS = ("src", "bench", "examples")
RAW_SLEEP_ALLOWLIST = (os.path.join("src", "common", "cancel.h"),)

RAW_SLEEP_RE = re.compile(
    r"(?:std\s*::\s*)?this_thread\s*::\s*sleep_(?:for|until)\s*\(")

# --- atomic-order / atomic-rmw ----------------------------------------------

# A std::atomic<...> declaration followed by the declared name. Matches
# members, globals, and locals; the terminator set keeps it off casts and
# template parameters.
ATOMIC_DECL_RE = re.compile(
    r"std\s*::\s*atomic\s*<[^;{}()]*>\s+([A-Za-z_]\w*)\s*[{;=(]")

# Bare seq-cst RMW spellings on an atomic-declared name (filled per file).
ATOMIC_RMW_OPS = r"(?:\+\+|--|\+=|-=|\|=|&=|\^=)"

# --- sync-annotation --------------------------------------------------------

# A proclus::Mutex member/variable declaration: `Mutex name ...;`. `Mutex&`
# parameters and MutexLock locals deliberately do not match.
MUTEX_DECL_RE = re.compile(r"\bMutex\s+([A-Za-z_]\w*)")

# Argument lists of every thread-safety annotation in the file.
TSA_ANNOTATION_RE = re.compile(
    r"PROCLUS_(?:GUARDED_BY|PT_GUARDED_BY|REQUIRES|ACQUIRE|RELEASE"
    r"|TRY_ACQUIRE|EXCLUDES|ACQUIRED_BEFORE|ACQUIRED_AFTER"
    r"|ASSERT_CAPABILITY|RETURN_CAPABILITY)\s*\(([^)]*)\)")

# --- unordered-iteration ----------------------------------------------------

UNORDERED_DECL_RE = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\s*<")
UNORDERED_ALIAS_RE = re.compile(
    r"\busing\s+([A-Za-z_]\w*)\s*=\s*[^;]*\bunordered_(?:map|set|multimap"
    r"|multiset)\s*<")

# Ordered sinks: anything where emission order becomes observable output or
# perturbs the deterministic RNG stream.
ORDERED_SINK_RE = re.compile(r"push_back|emplace_back|<<|\b[Rr]ng\b")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Replaces comments and string/char literal contents with spaces.

    Newlines are preserved so line numbers in the stripped text match the
    original. Handles //, /* */, "..." (with escapes), '...', and the
    R"delim(...)delim" raw-string form.
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and
                                 text[i + 1] == "/"):
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            i += 2
        elif c == "R" and nxt == '"':
            m = re.match(r'R"([^()\s\\]*)\(', text[i:])
            if m:
                close = ")" + m.group(1) + '"'
                end = text.find(close, i + m.end())
                end = n if end == -1 else end + len(close)
                out.append('""')
                out.extend("\n" if ch == "\n" else " "
                           for ch in text[i + 2:end - 2])
                i = end
            else:
                out.append(c)
                i += 1
        elif c == '"' or c == "'":
            quote = c
            out.append(quote)
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out.append("  ")
                    i += 2
                else:
                    out.append("\n" if text[i] == "\n" else " ")
                    i += 1
            out.append(quote)
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text, pos):
    return text.count("\n", 0, pos) + 1


def allowed(original_lines, line_no, rule):
    line = original_lines[line_no - 1] if line_no <= len(original_lines) else ""
    m = ALLOW_RE.search(line)
    return bool(m and m.group(1) == rule)


def fn_spans(code, pattern):
    """Yields (start, end) offsets of bodies of functions matching pattern."""
    for m in pattern.finditer(code):
        # Walk past the parameter list.
        i = code.find("(", m.start())
        depth = 0
        n = len(code)
        while i < n:
            if code[i] == "(":
                depth += 1
            elif code[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        if i >= n:
            continue
        # Find the body '{' (skip const/noexcept/trailing specifiers); a ';'
        # first means this was only a declaration.
        j = i + 1
        while j < n and code[j] not in "{;":
            j += 1
        if j >= n or code[j] == ";":
            continue
        depth = 0
        k = j
        while k < n:
            if code[k] == "{":
                depth += 1
            elif code[k] == "}":
                depth -= 1
                if depth == 0:
                    break
            k += 1
        yield j, k


def check_banned_randomness(rel_path, original_lines, code, findings):
    if rel_path in RNG_ALLOWLIST:
        return
    for pattern, label in BANNED_RANDOMNESS:
        for m in pattern.finditer(code):
            ln = line_of(code, m.start())
            if allowed(original_lines, ln, "banned-randomness"):
                continue
            findings.append(Finding(
                rel_path, ln, "banned-randomness",
                f"{label} breaks seeded reproducibility; draw from "
                "proclus::Rng (src/common/rng.h) instead"))


def check_iostream(rel_path, original_lines, code, findings):
    if not rel_path.startswith("src" + os.sep):
        return
    for m in IOSTREAM_RE.finditer(code):
        ln = line_of(code, m.start())
        if allowed(original_lines, ln, "iostream-in-library"):
            continue
        findings.append(Finding(
            rel_path, ln, "iostream-in-library",
            f"library code must not use std::{m.group(1)}; use PROCLUS_LOG "
            "from common/logging.h"))


def check_raw_scan(rel_path, original_lines, code, findings):
    top = rel_path.split(os.sep, 1)[0]
    if top not in RAW_SCAN_DIRS or rel_path in RAW_SCAN_ALLOWLIST:
        return
    for m in RAW_SCAN_RE.finditer(code):
        ln = line_of(code, m.start())
        if allowed(original_lines, ln, "raw-scan"):
            continue
        findings.append(Finding(
            rel_path, ln, "raw-scan",
            "raw PointSource scan bypasses the scan executor; express the "
            "pass as a ScanConsumer and drive it with ScanExecutor::Run "
            "(data/engine.h) so it can share physical scans and the "
            "RunStats data-movement counters stay truthful"))


def check_raw_ifstream(rel_path, original_lines, code, findings):
    if not rel_path.startswith(RAW_IFSTREAM_DIR + os.sep):
        return
    if rel_path in RAW_IFSTREAM_ALLOWLIST:
        return
    for m in RAW_IFSTREAM_RE.finditer(code):
        ln = line_of(code, m.start())
        if allowed(original_lines, ln, "raw-ifstream"):
            continue
        findings.append(Finding(
            rel_path, ln, "raw-ifstream",
            "direct std::ifstream in src/data silently truncates on I/O "
            "errors; read through ReadFileBytes (data/binary_io.h) or the "
            "PointSource layer so failures surface as detailed Statuses"))


def check_raw_sleep(rel_path, original_lines, code, findings):
    top = rel_path.split(os.sep, 1)[0]
    if top not in RAW_SLEEP_DIRS or rel_path in RAW_SLEEP_ALLOWLIST:
        return
    for m in RAW_SLEEP_RE.finditer(code):
        ln = line_of(code, m.start())
        if allowed(original_lines, ln, "raw-sleep"):
            continue
        findings.append(Finding(
            rel_path, ln, "raw-sleep",
            "bare this_thread::sleep cannot be woken by a CancelToken or "
            "truncated by a Deadline, breaking the one-block cancellation "
            "latency bound; use InterruptibleSleep or HangUntilCancelled "
            "from common/cancel.h"))


def check_status_fn_checks(rel_path, original_lines, code, findings):
    if not rel_path.startswith("src" + os.sep):
        return
    spans = list(fn_spans(code, STATUS_FN_RE))
    if not spans:
        return
    for m in re.finditer(r"\bPROCLUS_CHECK\s*\(", code):
        if not any(start <= m.start() < end for start, end in spans):
            continue
        ln = line_of(code, m.start())
        if allowed(original_lines, ln, "check-in-status-fn"):
            continue
        # Accept a justification on the same line or anywhere in the
        # contiguous comment block directly above the check.
        context = [original_lines[ln - 1]]
        prev = ln - 2
        while prev >= 0 and original_lines[prev].lstrip().startswith("//"):
            context.append(original_lines[prev])
            prev -= 1
        if any("invariant" in line.lower() for line in context):
            continue
        findings.append(Finding(
            rel_path, ln, "check-in-status-fn",
            "PROCLUS_CHECK inside a Status/Result-returning function: "
            "return Status for user-input validation, or add an "
            "`// invariant:` comment explaining why this cannot fire on "
            "caller-supplied data"))


def match_paren(code, open_paren):
    """Offset of the ')' matching code[open_paren] == '(', or -1."""
    depth, i, n = 0, open_paren, len(code)
    while i < n:
        if code[i] == "(":
            depth += 1
        elif code[i] == ")":
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return -1


def loop_bodies(code):
    """Yields (body_start, body_end) offsets for every for/while loop body.

    Nested loops yield their own (smaller) spans too; a caller matching
    per call site should de-duplicate by call offset.
    """
    n = len(code)
    for m in re.finditer(r"\b(?:for|while)\s*\(", code):
        close = match_paren(code, m.end() - 1)
        if close == -1:
            continue
        j = close + 1
        while j < n and code[j] in " \t\n":
            j += 1
        if j < n and code[j] == "{":
            depth, k = 0, j
            while k < n:
                if code[k] == "{":
                    depth += 1
                elif code[k] == "}":
                    depth -= 1
                    if depth == 0:
                        break
                k += 1
            yield j, min(k + 1, n)
        else:
            k = code.find(";", j)
            yield j, (k + 1 if k != -1 else n)


def top_level_args(arg_text):
    """Splits a stripped argument-list string on top-level commas."""
    args, depth, start = [], 0, 0
    for i, ch in enumerate(arg_text):
        if ch in "([{<":
            depth += 1
        elif ch in ")]}>":
            depth -= 1
        elif ch == "," and depth == 0:
            args.append(arg_text[start:i].strip())
            start = i + 1
    args.append(arg_text[start:].strip())
    return args


def check_segmental_dimension_set(rel_path, original_lines, code, findings):
    if not rel_path.startswith(tuple(d + os.sep for d in SEGMENTAL_RULE_DIRS)):
        return
    names = {m.group(1) for m in DIMENSION_SET_DECL_RE.finditer(code)}
    if not names:
        return
    flagged = set()
    for body_start, body_end in loop_bodies(code):
        body = code[body_start:body_end]
        for m in SEGMENTAL_CALL_RE.finditer(body):
            offset = body_start + m.start()
            if offset in flagged:
                continue
            close = match_paren(code, body_start + m.end() - 1)
            if close == -1:
                continue
            args = top_level_args(code[body_start + m.end():close])
            last = args[-1].lstrip("*&").strip() if args else ""
            # `dims` and `dims.ToVector()` both walk/materialize the bitset
            # on every iteration.
            if last in names or any(last == name + ".ToVector()"
                                    for name in names):
                flagged.add(offset)
                ln = line_of(code, offset)
                if allowed(original_lines, ln, "segmental-dimension-set"):
                    continue
                findings.append(Finding(
                    rel_path, ln, "segmental-dimension-set",
                    "ManhattanSegmentalDistance(DimensionSet) inside a loop "
                    "walks the bitset per call; hoist the index list "
                    "(dims.ToVector()) out of the loop and pass it to the "
                    "span overload (bit-identical, allocation-free)"))


def comment_context_has(original_lines, line_no, needle):
    """True if `needle` is on line `line_no` or in the contiguous //-comment
    block directly above it (both searched in the ORIGINAL text, since
    comments are stripped from `code`)."""
    if line_no <= len(original_lines) and needle in original_lines[line_no - 1]:
        return True
    prev = line_no - 2
    while prev >= 0 and original_lines[prev].lstrip().startswith("//"):
        if needle in original_lines[prev]:
            return True
        prev -= 1
    return False


def check_raw_sync(rel_path, original_lines, code, findings):
    top = rel_path.split(os.sep, 1)[0]
    if top not in RAW_SYNC_DIRS or rel_path in RAW_SYNC_ALLOWLIST:
        return
    for m in RAW_SYNC_RE.finditer(code):
        ln = line_of(code, m.start())
        if allowed(original_lines, ln, "raw-sync"):
            continue
        findings.append(Finding(
            rel_path, ln, "raw-sync",
            f"raw std::{m.group(1)} is invisible to the Clang thread-safety "
            "analysis; use the annotated Mutex/MutexLock/CondVar from "
            "common/sync.h (tsa preset checks the locking discipline at "
            "compile time)"))


def check_atomic_order(rel_path, original_lines, code, findings):
    if not rel_path.startswith("src" + os.sep):
        return
    for m in ATOMIC_DECL_RE.finditer(code):
        ln = line_of(code, m.start())
        if allowed(original_lines, ln, "atomic-order"):
            continue
        if comment_context_has(original_lines, ln, "order:"):
            continue
        findings.append(Finding(
            rel_path, ln, "atomic-order",
            f"std::atomic '{m.group(1)}' does not document its memory-order "
            "discipline; add a `// order: <relaxed|acquire/release|seq_cst> "
            "— <why>` comment on or above the declaration (or use "
            "GuardedCounter from common/sync.h for plain statistics)"))


def check_atomic_rmw(rel_path, original_lines, code, findings):
    if not rel_path.startswith("src" + os.sep):
        return
    names = {m.group(1) for m in ATOMIC_DECL_RE.finditer(code)}
    if not names:
        return
    alternation = "|".join(re.escape(n) for n in sorted(names))
    rmw = re.compile(
        r"(?:\b(" + alternation + r")\s*" + ATOMIC_RMW_OPS +
        r"|(?:\+\+|--)\s*\b(" + alternation + r")\b)")
    for m in rmw.finditer(code):
        name = m.group(1) or m.group(2)
        ln = line_of(code, m.start())
        if allowed(original_lines, ln, "atomic-rmw"):
            continue
        findings.append(Finding(
            rel_path, ln, "atomic-rmw",
            f"bare RMW operator on std::atomic '{name}' is sequentially "
            "consistent; spell the ordering explicitly — "
            "fetch_add(n, std::memory_order_...) — or demote the variable "
            "to a GuardedCounter"))


def check_sync_annotation(rel_path, original_lines, code, findings):
    if not rel_path.startswith("src" + os.sep):
        return
    if rel_path in RAW_SYNC_ALLOWLIST:
        return  # sync.h defines Mutex itself.
    annotated = set()
    for m in TSA_ANNOTATION_RE.finditer(code):
        annotated.update(re.findall(r"[A-Za-z_]\w*", m.group(1)))
    for m in MUTEX_DECL_RE.finditer(code):
        name = m.group(1)
        if name in annotated:
            continue
        # A declaration that itself carries an annotation (e.g. an
        # ACQUIRED_BEFORE ordering edge) documents the mutex too.
        decl_tail = code[m.end():code.find("\n", m.end())
                         if "\n" in code[m.end():] else len(code)]
        if re.match(r"\s*PROCLUS_[A-Z_]+\s*\(", decl_tail):
            continue
        ln = line_of(code, m.start())
        if allowed(original_lines, ln, "sync-annotation"):
            continue
        findings.append(Finding(
            rel_path, ln, "sync-annotation",
            f"Mutex '{name}' appears in no thread-safety annotation in this "
            "file; declare what it protects (PROCLUS_GUARDED_BY/REQUIRES/"
            "ACQUIRE/EXCLUDES/...) so the tsa preset can check the "
            "discipline, or justify with lint:allow(sync-annotation)"))


def unordered_container_names(code):
    """Names of variables declared in this file with an unordered type."""
    names = set()
    n = len(code)
    decl_starts = [m.start() for m in UNORDERED_DECL_RE.finditer(code)]
    aliases = [m.group(1) for m in UNORDERED_ALIAS_RE.finditer(code)]
    for alias in aliases:
        for m in re.finditer(r"\b" + re.escape(alias) +
                             r"\b\s*[&*]?\s*([A-Za-z_]\w*)\s*[=;({]", code):
            names.add(m.group(1))
    for start in decl_starts:
        i = code.find("<", start)
        depth = 0
        while i < n:
            if code[i] == "<":
                depth += 1
            elif code[i] == ">":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        if i >= n:
            continue
        m = re.match(r"\s*[&*]*\s*([A-Za-z_]\w*)", code[i + 1:])
        if m:
            names.add(m.group(1))
    return names


def range_for_loops(code):
    """Yields (header_offset, loop_variable_expr, body_text) per range-for."""
    n = len(code)
    for m in re.finditer(r"\bfor\s*\(", code):
        open_paren = m.end() - 1
        depth, i = 0, open_paren
        while i < n:
            if code[i] == "(":
                depth += 1
            elif code[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        if i >= n:
            continue
        header = code[open_paren + 1:i]
        # Top-level ':' (not '::') separates declaration from range expr.
        colon = -1
        h_depth = 0
        for k, ch in enumerate(header):
            if ch in "([{<":
                h_depth += 1
            elif ch in ")]}>":
                h_depth -= 1
            elif (ch == ":" and h_depth == 0 and
                  header[k - 1:k] != ":" and header[k + 1:k + 2] != ":"):
                colon = k
                break
        if colon == -1:
            continue  # Classic three-clause for.
        range_expr = header[colon + 1:].strip()
        # Body: brace block or single statement.
        j = i + 1
        while j < n and code[j] in " \t\n":
            j += 1
        if j < n and code[j] == "{":
            depth, k = 0, j
            while k < n:
                if code[k] == "{":
                    depth += 1
                elif code[k] == "}":
                    depth -= 1
                    if depth == 0:
                        break
                k += 1
            body = code[j:k + 1]
        else:
            k = code.find(";", j)
            body = code[j:k + 1] if k != -1 else code[j:]
        yield m.start(), range_expr, body


def check_unordered_iteration(rel_path, original_lines, code, findings):
    top = rel_path.split(os.sep, 1)[0]
    if top not in LIBRARY_RULE_DIRS:
        return
    names = unordered_container_names(code)
    if not names:
        return
    for offset, range_expr, body in range_for_loops(code):
        if range_expr not in names:
            continue
        if not ORDERED_SINK_RE.search(body):
            continue  # Order-insensitive accumulation is fine.
        ln = line_of(code, offset)
        if allowed(original_lines, ln, "unordered-iteration"):
            continue
        findings.append(Finding(
            rel_path, ln, "unordered-iteration",
            f"range-for over unordered container '{range_expr}' feeds an "
            "ordered sink (output/push_back/Rng); hash iteration order is "
            "implementation-defined and breaks bit-for-bit reproducibility "
            "— sort the keys first"))


def check_include_guard(rel_path, original_lines, code, findings):
    top = rel_path.split(os.sep, 1)[0]
    if top not in GUARD_DIRS or not rel_path.endswith((".h", ".hpp")):
        return
    stem = rel_path
    if stem.startswith("src" + os.sep):
        stem = stem[len("src" + os.sep):]
    stem = re.sub(r"\.(h|hpp)$", "", stem)
    expected = "PROCLUS_" + re.sub(r"[^A-Za-z0-9]", "_", stem).upper() + "_H_"
    ifndef = re.search(r"#ifndef\s+(\S+)", code)
    define = re.search(r"#define\s+(\S+)", code)
    if not ifndef or not define or ifndef.group(1) != define.group(1):
        findings.append(Finding(
            rel_path, 1, "include-guard",
            f"missing or mismatched include guard; expected {expected}"))
        return
    if ifndef.group(1) != expected:
        ln = line_of(code, ifndef.start())
        if allowed(original_lines, ln, "include-guard"):
            return
        findings.append(Finding(
            rel_path, ln, "include-guard",
            f"guard {ifndef.group(1)} does not match path-derived name "
            f"{expected}"))


def check_nodiscard_status(root, findings):
    status_h = os.path.join("src", "common", "status.h")
    path = os.path.join(root, status_h)
    if not os.path.exists(path):
        return
    with open(path, encoding="utf-8") as f:
        text = f.read()
    for cls in ("Status", "Result"):
        if not re.search(r"class\s+\[\[nodiscard\]\]\s+" + cls, text):
            findings.append(Finding(
                status_h, 1, "nodiscard-status",
                f"class {cls} must be declared [[nodiscard]] so discarded "
                "errors fail the -Werror build"))


def lint_file(root, rel_path, findings):
    with open(os.path.join(root, rel_path), encoding="utf-8",
              errors="replace") as f:
        text = f.read()
    original_lines = text.splitlines()
    code = strip_comments_and_strings(text)
    check_banned_randomness(rel_path, original_lines, code, findings)
    check_iostream(rel_path, original_lines, code, findings)
    check_raw_scan(rel_path, original_lines, code, findings)
    check_raw_ifstream(rel_path, original_lines, code, findings)
    check_status_fn_checks(rel_path, original_lines, code, findings)
    check_segmental_dimension_set(rel_path, original_lines, code, findings)
    check_unordered_iteration(rel_path, original_lines, code, findings)
    check_raw_sync(rel_path, original_lines, code, findings)
    check_raw_sleep(rel_path, original_lines, code, findings)
    check_atomic_order(rel_path, original_lines, code, findings)
    check_atomic_rmw(rel_path, original_lines, code, findings)
    check_sync_annotation(rel_path, original_lines, code, findings)
    check_include_guard(rel_path, original_lines, code, findings)


def lint_tree(root):
    findings = []
    for top in SOURCE_DIRS:
        top_path = os.path.join(root, top)
        if not os.path.isdir(top_path):
            continue
        for dirpath, dirnames, filenames in os.walk(top_path):
            dirnames[:] = sorted(d for d in dirnames if not d.startswith("."))
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTS):
                    rel = os.path.relpath(os.path.join(dirpath, name), root)
                    lint_file(root, rel, findings)
    check_nodiscard_status(root, findings)
    return findings


# --------------------------- self test ------------------------------------

SELF_TEST_FIXTURES = [
    # (relative path, contents, expected rule ids)
    ("src/core/scratch.cc",
     "#include <random>\n"
     "int Seed() {\n"
     "  std::random_device rd;\n"
     "  return rd();\n"
     "}\n",
     ["banned-randomness"]),
    ("tests/scratch_test.cc",
     "#include <cstdlib>\n"
     "int F() { srand(42); return rand(); }\n"
     "long G() { return time(nullptr); }\n",
     ["banned-randomness", "banned-randomness", "banned-randomness"]),
    ("src/data/noisy.cc",
     "#include <iostream>\n"
     "void Shout() { std::cout << \"hi\"; }\n",
     ["iostream-in-library"]),
    ("src/core/validate.cc",
     "#include \"common/status.h\"\n"
     "namespace proclus {\n"
     "Status Load(int n) {\n"
     "  PROCLUS_CHECK(n > 0);\n"
     "  return Status::OK();\n"
     "}\n"
     "}\n",
     ["check-in-status-fn"]),
    ("src/core/justified.cc",
     "#include \"common/status.h\"\n"
     "namespace proclus {\n"
     "Status Load(int n) {\n"
     "  // invariant: n was computed internally above, never user input.\n"
     "  PROCLUS_CHECK(n > 0);\n"
     "  return Status::OK();\n"
     "}\n"
     "}\n",
     []),
    ("src/common/badguard.h",
     "#ifndef WRONG_NAME_H\n"
     "#define WRONG_NAME_H\n"
     "#endif\n",
     ["include-guard"]),
    ("src/common/goodguard.h",
     "#ifndef PROCLUS_COMMON_GOODGUARD_H_\n"
     "#define PROCLUS_COMMON_GOODGUARD_H_\n"
     "#endif  // PROCLUS_COMMON_GOODGUARD_H_\n",
     []),
    # Comments and strings must not trigger rules.
    ("src/core/commented.cc",
     "// std::random_device is banned here, says this comment.\n"
     "/* std::cout << rand(); */\n"
     "const char* kDoc = \"std::random_device\";\n",
     []),
    # Explicit suppression.
    ("src/core/suppressed.cc",
     "#include <iostream>\n"
     "void Dump() { std::cerr << 1; }  // lint:allow(iostream-in-library)\n",
     []),
    # DEPRECATION NOTE — result-unchecked is retired. The textual rule
    # treated any earlier `r.ok()` in the function body as a guard, even
    # one in a sibling branch that does not dominate the access; the
    # `status-flow` rule in tools/analyzer tracks dominance on the
    # statement tree and owns this invariant now (see
    # tools/analyzer/rules.py and its fixtures). This fixture — the
    # retired rule's canonical positive — must stay FINDING-FREE here to
    # prove the regex rule is gone; the analyzer self-test proves
    # status-flow still catches the same code.
    ("src/core/unchecked_value.cc",
     "#include \"common/status.h\"\n"
     "namespace proclus {\n"
     "int Get() {\n"
     "  auto r = Compute();\n"
     "  return r.value();\n"
     "}\n"
     "}\n",
     []),
    # raw-scan: a pass calling PointSource::Scan directly.
    ("src/core/raw_pass.cc",
     "#include \"data/point_source.h\"\n"
     "namespace proclus {\n"
     "void Sum(const PointSource& source) {\n"
     "  source.Scan(512, [](size_t, auto, size_t) {});\n"
     "}\n"
     "void SumPtr(const PointSource* source) {\n"
     "  ForEachBlock(*source);\n"
     "}\n"
     "}\n",
     ["raw-scan", "raw-scan"]),
    # The executor implementation itself is allowlisted.
    ("src/data/engine.cc",
     "#include \"data/engine.h\"\n"
     "namespace proclus {\n"
     "void Drive(const PointSource& source) {\n"
     "  source.Scan(512, [](size_t, auto, size_t) {});\n"
     "}\n"
     "}\n",
     []),
    # Tests may exercise the raw API.
    ("tests/raw_scan_test.cc",
     "#include \"data/point_source.h\"\n"
     "void Probe(const proclus::PointSource& source) {\n"
     "  source.Scan(1, [](size_t, auto, size_t) {});\n"
     "}\n",
     []),
    # Explicit suppression with justification.
    ("src/core/raw_allowed.cc",
     "#include \"data/point_source.h\"\n"
     "namespace proclus {\n"
     "void Peek(const PointSource& source) {\n"
     "  // One-off probe; stats are not reported from this path.\n"
     "  source.Scan(512, [](size_t, auto, size_t) {});  // lint:allow(raw-scan)\n"
     "}\n"
     "}\n",
     []),
    # The shard set's glued Scan restitches raw per-shard scans into
    # whole-set blocks; the implementation file is allowlisted.
    ("src/data/sharded_source.cc",
     "#include \"data/sharded_source.h\"\n"
     "namespace proclus {\n"
     "void Glue(const PointSource& shard) {\n"
     "  shard.Scan(512, [](size_t, auto, size_t) {});\n"
     "}\n"
     "}\n",
     []),
    # The allowlist is file-exact: any other shard-layer helper in
    # src/data still has to route scans through the executor.
    ("src/data/shard_helper.cc",
     "#include \"data/sharded_source.h\"\n"
     "namespace proclus {\n"
     "void Walk(const PointSource& shard) {\n"
     "  shard.Scan(512, [](size_t, auto, size_t) {});\n"
     "}\n"
     "}\n",
     ["raw-scan"]),
    # raw-ifstream: a src/data file opening a file directly.
    ("src/data/sneaky_reader.cc",
     "#include <fstream>\n"
     "namespace proclus {\n"
     "int Peek(const char* path) {\n"
     "  std::ifstream in(path);\n"
     "  return in.get();\n"
     "}\n"
     "}\n",
     ["raw-ifstream"]),
    # The checked binary reader itself is allowlisted.
    ("src/data/binary_io.cc",
     "#include <fstream>\n"
     "namespace proclus {\n"
     "int Peek(const char* path) {\n"
     "  std::ifstream in(path);\n"
     "  return in.get();\n"
     "}\n"
     "}\n",
     []),
    # Outside src/data the rule does not apply (core/model_io.cc reads
    # models through its own versioned format).
    ("src/core/reader.cc",
     "#include <fstream>\n"
     "namespace proclus {\n"
     "int Peek(const char* path) {\n"
     "  std::ifstream in(path);\n"
     "  return in.get();\n"
     "}\n"
     "}\n",
     []),
    # The shard layer reads bytes through DiskSource / the manifest
    # reader, never its own streams: sharded_source.cc is allowlisted for
    # raw-scan but NOT for raw-ifstream.
    ("src/data/sharded_source.cc",
     "#include <fstream>\n"
     "namespace proclus {\n"
     "int PeekShard(const char* path) {\n"
     "  std::ifstream in(path);\n"
     "  return in.get();\n"
     "}\n"
     "}\n",
     ["raw-ifstream"]),
    # Explicit suppression with justification.
    ("src/data/probe_allowed.cc",
     "#include <fstream>\n"
     "namespace proclus {\n"
     "bool Exists(const char* path) {\n"
     "  // Existence probe only; no payload bytes are consumed.\n"
     "  return std::ifstream(path).good();  // lint:allow(raw-ifstream)\n"
     "}\n"
     "}\n",
     []),
    # segmental-dimension-set: the DimensionSet overload in a hot loop.
    ("src/core/hot_segmental.cc",
     "#include \"distance/segmental.h\"\n"
     "namespace proclus {\n"
     "double Sum(const Matrix& data, std::span<const double> medoid,\n"
     "           const DimensionSet& dims) {\n"
     "  double total = 0.0;\n"
     "  for (size_t r = 0; r < data.rows(); ++r) {\n"
     "    total += ManhattanSegmentalDistance(data.row(r), medoid, dims);\n"
     "  }\n"
     "  return total;\n"
     "}\n"
     "}\n",
     ["segmental-dimension-set"]),
    # Per-iteration ToVector() is the same bug in disguise.
    ("src/distance/tovector_loop.cc",
     "#include \"distance/segmental.h\"\n"
     "namespace proclus {\n"
     "double Sum(const Matrix& data, std::span<const double> medoid,\n"
     "           const DimensionSet& dims) {\n"
     "  double total = 0.0;\n"
     "  for (size_t r = 0; r < data.rows(); ++r)\n"
     "    total += ManhattanSegmentalDistance(data.row(r), medoid,\n"
     "                                        dims.ToVector());\n"
     "  return total;\n"
     "}\n"
     "}\n",
     ["segmental-dimension-set"]),
    # The fix: hoist the index list once and use the span overload.
    ("src/core/hoisted_segmental.cc",
     "#include \"distance/segmental.h\"\n"
     "namespace proclus {\n"
     "double Sum(const Matrix& data, std::span<const double> medoid,\n"
     "           const DimensionSet& dims) {\n"
     "  const std::vector<uint32_t> ids = dims.ToVector();\n"
     "  double total = 0.0;\n"
     "  for (size_t r = 0; r < data.rows(); ++r)\n"
     "    total += ManhattanSegmentalDistance(data.row(r), medoid, ids);\n"
     "  return total;\n"
     "}\n"
     "}\n",
     []),
    # A one-off call outside any loop is fine.
    ("src/core/oneshot_segmental.cc",
     "#include \"distance/segmental.h\"\n"
     "namespace proclus {\n"
     "double One(std::span<const double> a, std::span<const double> b,\n"
     "           const DimensionSet& dims) {\n"
     "  return ManhattanSegmentalDistance(a, b, dims);\n"
     "}\n"
     "}\n",
     []),
    # Outside src/core and src/distance the rule does not apply.
    ("src/eval/loose_segmental.cc",
     "#include \"distance/segmental.h\"\n"
     "namespace proclus {\n"
     "double Sum(const Matrix& data, std::span<const double> medoid,\n"
     "           const DimensionSet& dims) {\n"
     "  double total = 0.0;\n"
     "  for (size_t r = 0; r < data.rows(); ++r)\n"
     "    total += ManhattanSegmentalDistance(data.row(r), medoid, dims);\n"
     "  return total;\n"
     "}\n"
     "}\n",
     []),
    # Explicit suppression with justification.
    ("src/core/segmental_allowed.cc",
     "#include \"distance/segmental.h\"\n"
     "namespace proclus {\n"
     "double Sum(const Matrix& data, std::span<const double> medoid,\n"
     "           const DimensionSet& dims) {\n"
     "  double total = 0.0;\n"
     "  // Cold path: runs once per restart over k rows, not per point.\n"
     "  for (size_t r = 0; r < data.rows(); ++r)\n"
     "    total += ManhattanSegmentalDistance(  // lint:allow(segmental-dimension-set)\n"
     "        data.row(r), medoid, dims);\n"
     "  return total;\n"
     "}\n"
     "}\n",
     []),
    # unordered-iteration: hash order escaping into an ordered sink.
    ("src/core/unordered_sink.cc",
     "#include <unordered_set>\n"
     "#include <vector>\n"
     "namespace proclus {\n"
     "void Collect(const std::unordered_set<int>& seen,\n"
     "             std::vector<int>* out) {\n"
     "  for (int v : seen) out->push_back(v);\n"
     "}\n"
     "}\n",
     ["unordered-iteration"]),
    # Order-insensitive accumulation over the same container is fine.
    ("src/core/unordered_fold.cc",
     "#include <unordered_set>\n"
     "namespace proclus {\n"
     "long Sum(const std::unordered_set<int>& seen) {\n"
     "  long total = 0;\n"
     "  for (int v : seen) total += v;\n"
     "  return total;\n"
     "}\n"
     "}\n",
     []),
    # A same-file alias of an unordered type is still tracked.
    ("src/core/unordered_alias.cc",
     "#include <cstdint>\n"
     "#include <unordered_map>\n"
     "#include <vector>\n"
     "namespace proclus {\n"
     "using CellMap = std::unordered_map<uint64_t, uint32_t>;\n"
     "void Dump(std::vector<uint64_t>* out) {\n"
     "  CellMap cells;\n"
     "  for (const auto& kv : cells) out->push_back(kv.first);\n"
     "}\n"
     "}\n",
     ["unordered-iteration"]),
    # lint:allow(unordered-iteration) suppresses with justification.
    ("src/core/unordered_allowed.cc",
     "#include <unordered_set>\n"
     "#include <vector>\n"
     "namespace proclus {\n"
     "void Collect(const std::unordered_set<int>& seen,\n"
     "             std::vector<int>* out) {\n"
     "  // Caller sorts `out`; emission order here is irrelevant.\n"
     "  for (int v : seen) out->push_back(v);  // lint:allow(unordered-iteration)\n"
     "}\n"
     "}\n",
     []),
    # raw-sync: raw std primitives outside common/sync.h.
    ("src/core/raw_locking.cc",
     "#include <mutex>\n"
     "namespace proclus {\n"
     "std::mutex g_mu;\n"
     "void Touch() { std::lock_guard<std::mutex> lock(g_mu); }\n"
     "}\n",
     ["raw-sync", "raw-sync", "raw-sync"]),
    # The annotated wrappers' own implementation is allowlisted.
    ("src/common/sync.h",
     "#ifndef PROCLUS_COMMON_SYNC_H_\n"
     "#define PROCLUS_COMMON_SYNC_H_\n"
     "#include <mutex>\n"
     "namespace proclus {\n"
     "class Mutex { std::mutex mu_; };\n"
     "}\n"
     "#endif  // PROCLUS_COMMON_SYNC_H_\n",
     []),
    # Tests may drive the raw std API.
    ("tests/raw_sync_test.cc",
     "#include <mutex>\n"
     "std::mutex test_mu;\n",
     []),
    # Explicit suppression with justification.
    ("src/core/raw_sync_allowed.cc",
     "#include <mutex>\n"
     "namespace proclus {\n"
     "// Interop with an external callback API that hands us a std lock.\n"
     "void Use(std::unique_lock<std::mutex>& lock);  // lint:allow(raw-sync)\n"
     "}\n",
     []),
    # raw-sleep: a bare this_thread sleep outside common/cancel.h.
    ("src/core/busy_wait.cc",
     "#include <chrono>\n"
     "#include <thread>\n"
     "namespace proclus {\n"
     "void Nap() {\n"
     "  std::this_thread::sleep_for(std::chrono::milliseconds(5));\n"
     "}\n"
     "}\n",
     ["raw-sleep"]),
    # sleep_until and the unqualified (using-directive) spelling count too.
    ("bench/pacing.cc",
     "#include <chrono>\n"
     "#include <thread>\n"
     "using namespace std;\n"
     "void Pace(chrono::steady_clock::time_point t) {\n"
     "  this_thread::sleep_until(t);\n"
     "}\n",
     ["raw-sleep"]),
    # The interruptible primitives' own implementation is allowlisted.
    ("src/common/cancel.h",
     "#ifndef PROCLUS_COMMON_CANCEL_H_\n"
     "#define PROCLUS_COMMON_CANCEL_H_\n"
     "#include <chrono>\n"
     "#include <thread>\n"
     "namespace proclus {\n"
     "inline void SleepSlice() {\n"
     "  std::this_thread::sleep_for(std::chrono::milliseconds(1));\n"
     "}\n"
     "}\n"
     "#endif  // PROCLUS_COMMON_CANCEL_H_\n",
     []),
    # Tests may sleep directly (stress tests pace real threads).
    ("tests/sleepy_test.cc",
     "#include <chrono>\n"
     "#include <thread>\n"
     "void Wait() {\n"
     "  std::this_thread::sleep_for(std::chrono::milliseconds(5));\n"
     "}\n",
     []),
    # Explicit suppression with justification.
    ("src/core/sleep_allowed.cc",
     "#include <chrono>\n"
     "#include <thread>\n"
     "namespace proclus {\n"
     "void Settle() {\n"
     "  // External device needs a fixed settle time; nothing to cancel.\n"
     "  std::this_thread::sleep_for(std::chrono::milliseconds(2));"
     "  // lint:allow(raw-sleep)\n"
     "}\n"
     "}\n",
     []),
    # atomic-order: an undocumented atomic declaration.
    ("src/core/atomic_nodoc.cc",
     "#include <atomic>\n"
     "namespace proclus {\n"
     "std::atomic<int> g_hits{0};\n"
     "}\n",
     ["atomic-order"]),
    # A trailing `// order:` comment satisfies the rule.
    ("src/core/atomic_doc_trailing.cc",
     "#include <atomic>\n"
     "namespace proclus {\n"
     "std::atomic<int> g_hits{0};  // order: relaxed — isolated statistic.\n"
     "}\n",
     []),
    # So does the contiguous comment block directly above.
    ("src/core/atomic_doc_above.cc",
     "#include <atomic>\n"
     "namespace proclus {\n"
     "// order: relaxed — pure ticket counter; draws carry no payload and\n"
     "// the batch is published by the guarded generation handshake.\n"
     "std::atomic<unsigned> g_ticket{0};\n"
     "}\n",
     []),
    # atomic-rmw: bare ++ on a (documented) atomic is still seq-cst.
    ("src/core/atomic_bare_rmw.cc",
     "#include <atomic>\n"
     "namespace proclus {\n"
     "std::atomic<int> g_hits{0};  // order: relaxed — isolated statistic.\n"
     "void Bump() { g_hits++; }\n"
     "void Drop() { g_hits -= 2; }\n"
     "}\n",
     ["atomic-rmw", "atomic-rmw"]),
    # Explicit fetch_add with a named order is the fix.
    ("src/core/atomic_explicit_rmw.cc",
     "#include <atomic>\n"
     "namespace proclus {\n"
     "std::atomic<int> g_hits{0};  // order: relaxed — isolated statistic.\n"
     "void Bump() { g_hits.fetch_add(1, std::memory_order_relaxed); }\n"
     "}\n",
     []),
    # sync-annotation: a Mutex no annotation ever references.
    ("src/core/mutex_unannotated.cc",
     "#include \"common/sync.h\"\n"
     "namespace proclus {\n"
     "class Pool {\n"
     "  Mutex mu_;\n"
     "  int jobs_ = 0;\n"
     "};\n"
     "}\n",
     ["sync-annotation"]),
    # Referenced by a GUARDED_BY (or any other annotation) — contract held.
    ("src/core/mutex_guarded.cc",
     "#include \"common/sync.h\"\n"
     "namespace proclus {\n"
     "class Pool {\n"
     "  Mutex mu_;\n"
     "  int jobs_ PROCLUS_GUARDED_BY(mu_) = 0;\n"
     "};\n"
     "}\n",
     []),
    # An acquired_before edge on the declaration itself also counts.
    ("src/core/mutex_ordered.cc",
     "#include \"common/sync.h\"\n"
     "namespace proclus {\n"
     "class Pool {\n"
     "  Mutex outer_ PROCLUS_ACQUIRED_BEFORE(inner_);\n"
     "  Mutex inner_;\n"
     "  int jobs_ PROCLUS_GUARDED_BY(inner_) = 0;\n"
     "};\n"
     "}\n",
     []),
    # Explicit suppression with justification.
    ("src/core/mutex_allowed.cc",
     "#include \"common/sync.h\"\n"
     "namespace proclus {\n"
     "class Pool {\n"
     "  // Guards an opaque third-party handle the analysis cannot type.\n"
     "  Mutex mu_;  // lint:allow(sync-annotation)\n"
     "};\n"
     "}\n",
     []),
]


def self_test():
    failures = []
    with tempfile.TemporaryDirectory() as root:
        for rel, contents, expected in SELF_TEST_FIXTURES:
            path = os.path.join(root, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(contents)
            findings = []
            lint_file(root, os.path.normpath(rel), findings)
            got = [f.rule for f in findings]
            if got != expected:
                failures.append(f"{rel}: expected {expected}, got "
                                f"{[str(f) for f in findings]}")
            os.remove(path)

        # A scratch file seeded from std::random_device must make the full
        # tree scan fail (acceptance criterion for the lint layer).
        scratch = os.path.join(root, "src", "scratch_seed.cc")
        os.makedirs(os.path.dirname(scratch), exist_ok=True)
        with open(scratch, "w", encoding="utf-8") as f:
            f.write("#include <random>\n"
                    "unsigned Seed() { return std::random_device{}(); }\n")
        tree_findings = lint_tree(root)
        if not any(f.rule == "banned-randomness" for f in tree_findings):
            failures.append("tree scan failed to flag std::random_device "
                            "seeding in a scratch file")

        # nodiscard-status fires when status.h drops the attribute.
        status_h = os.path.join(root, "src", "common", "status.h")
        with open(status_h, "w", encoding="utf-8") as f:
            f.write("class Status {};\ntemplate <typename T> class Result {};\n")
        findings = []
        check_nodiscard_status(root, findings)
        if [f.rule for f in findings] != ["nodiscard-status"] * 2:
            failures.append(f"nodiscard-status: got {[str(f) for f in findings]}")

    if failures:
        print("lint self-test FAILED:")
        for failure in failures:
            print("  " + failure)
        return 1
    print("lint self-test passed")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".",
                        help="repository root to lint (default: cwd)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in fixture tests and exit")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    if not os.path.isdir(os.path.join(args.root, "src")):
        print(f"lint: error: '{args.root}' has no src/ directory; "
              "pass the repository root via --root", file=sys.stderr)
        return 2
    findings = lint_tree(args.root)
    for finding in findings:
        print(finding)
    if findings:
        print(f"\nlint: {len(findings)} finding(s)")
        return 1
    print("lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
