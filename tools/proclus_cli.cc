// proclus_cli — command-line front end for the library.
//
//   proclus_cli generate --out data.csv [--n 10000] [--d 20] [--k 5]
//                        [--cluster-dims 7] [--outliers 0.05]
//                        [--rotation 0] [--seed 42] [--truth truth.csv]
//   proclus_cli fit      --input data.csv --k 5 --l 4
//                        [--model out.model] [--labels labels.csv]
//                        [--zscore] [--seed 1] [--threads 1]
//   proclus_cli classify --model fit.model --input new.csv
//                        [--labels labels.csv] [--no-outliers]
//   proclus_cli evaluate --labels labels.csv --truth truth.csv
//
// Label files are single-column CSVs of integers (-1 = outlier).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "core/classify.h"
#include "core/model_io.h"
#include "core/proclus.h"
#include "data/csv.h"
#include "data/normalize.h"
#include "eval/confusion.h"
#include "eval/matching.h"
#include "eval/metrics.h"
#include "eval/summary.h"
#include "gen/synthetic.h"

namespace {

using namespace proclus;

// ---- tiny flag parser: --name value pairs plus boolean --name flags ----

class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument '%s'\n", arg.c_str());
        ok_ = false;
        return;
      }
      std::string name = arg.substr(2);
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        values_[name] = argv[++i];
      } else {
        values_[name] = "";  // Boolean flag.
      }
    }
  }

  bool ok() const { return ok_; }
  bool Has(const std::string& name) const { return values_.count(name); }
  std::string Get(const std::string& name,
                  const std::string& fallback = "") const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& name, double fallback) const {
    return Has(name) ? std::atof(Get(name).c_str()) : fallback;
  }
  long GetInt(const std::string& name, long fallback) const {
    return Has(name) ? std::atol(Get(name).c_str()) : fallback;
  }

 private:
  std::map<std::string, std::string> values_;
  bool ok_ = true;
};

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

Status WriteLabels(const std::vector<int>& labels,
                   const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot write '" + path + "'");
  out << "cluster\n";
  for (int label : labels) out << label << '\n';
  if (!out) return Status::IOError("label write failed");
  return Status::OK();
}

Result<std::vector<int>> ReadLabels(const std::string& path) {
  auto csv = ReadCsvFile(path);
  PROCLUS_RETURN_IF_ERROR(csv.status());
  if (csv->dims() != 1)
    return Status::InvalidArgument("label file must have one column");
  std::vector<int> labels(csv->size());
  for (size_t i = 0; i < csv->size(); ++i)
    labels[i] = static_cast<int>(csv->at(i, 0));
  return labels;
}

// ---- subcommands ----

int CmdGenerate(const Flags& flags) {
  std::string out_path = flags.Get("out");
  if (out_path.empty()) {
    std::fprintf(stderr, "generate: --out is required\n");
    return 2;
  }
  GeneratorParams params;
  params.num_points = static_cast<size_t>(flags.GetInt("n", 10000));
  params.space_dims = static_cast<size_t>(flags.GetInt("d", 20));
  params.num_clusters = static_cast<size_t>(flags.GetInt("k", 5));
  params.outlier_fraction = flags.GetDouble("outliers", 0.05);
  params.rotation_max_degrees = flags.GetDouble("rotation", 0.0);
  params.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  if (flags.Has("cluster-dims")) {
    params.cluster_dim_counts.assign(
        params.num_clusters,
        static_cast<size_t>(flags.GetInt("cluster-dims", 5)));
  } else {
    params.poisson_mean = flags.GetDouble("poisson", 5.0);
  }
  auto data = GenerateSynthetic(params);
  if (!data.ok()) return Fail(data.status());
  if (Status status = WriteCsvFile(data->dataset, out_path); !status.ok())
    return Fail(status);
  std::printf("wrote %zu x %zu points to %s\n", data->dataset.size(),
              data->dataset.dims(), out_path.c_str());
  if (flags.Has("truth")) {
    if (Status status = WriteLabels(data->truth.labels, flags.Get("truth"));
        !status.ok())
      return Fail(status);
    std::printf("wrote ground-truth labels to %s\n",
                flags.Get("truth").c_str());
    for (size_t i = 0; i < data->truth.num_clusters(); ++i)
      std::printf("  true cluster %zu dims: {%s}\n", i + 1,
                  data->truth.cluster_dims[i].ToListString(1).c_str());
  }
  return 0;
}

int CmdFit(const Flags& flags) {
  std::string input = flags.Get("input");
  if (input.empty() || !flags.Has("k") || !flags.Has("l")) {
    std::fprintf(stderr, "fit: --input, --k and --l are required\n");
    return 2;
  }
  auto dataset = ReadCsvFile(input);
  if (!dataset.ok()) return Fail(dataset.status());
  Dataset working = *dataset;
  if (flags.Has("zscore")) {
    auto transform = ZScoreTransform(working);
    if (!transform.ok()) return Fail(transform.status());
    transform->Apply(&working);
  }
  ProclusParams params;
  params.num_clusters = static_cast<size_t>(flags.GetInt("k", 5));
  params.avg_dims = flags.GetDouble("l", 4.0);
  params.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  params.num_threads = static_cast<size_t>(flags.GetInt("threads", 1));
  auto model = RunProclus(working, params);
  if (!model.ok()) return Fail(model.status());

  auto summary = SummarizeClustering(working, *model);
  if (summary.ok())
    std::printf("%s", RenderSummary(*summary, dataset->dim_names()).c_str());

  if (flags.Has("model")) {
    if (Status status = SaveModelFile(*model, flags.Get("model"));
        !status.ok())
      return Fail(status);
    std::printf("model saved to %s\n", flags.Get("model").c_str());
  }
  if (flags.Has("labels")) {
    if (Status status = WriteLabels(model->labels, flags.Get("labels"));
        !status.ok())
      return Fail(status);
    std::printf("labels written to %s\n", flags.Get("labels").c_str());
  }
  return 0;
}

int CmdClassify(const Flags& flags) {
  std::string model_path = flags.Get("model");
  std::string input = flags.Get("input");
  if (model_path.empty() || input.empty()) {
    std::fprintf(stderr, "classify: --model and --input are required\n");
    return 2;
  }
  auto model = LoadModelFile(model_path);
  if (!model.ok()) return Fail(model.status());
  auto dataset = ReadCsvFile(input);
  if (!dataset.ok()) return Fail(dataset.status());
  ClassifyOptions options;
  options.detect_outliers = !flags.Has("no-outliers");
  auto labels = ClassifyPoints(*model, *dataset, options);
  if (!labels.ok()) return Fail(labels.status());
  size_t outliers = 0;
  std::vector<size_t> sizes(model->num_clusters(), 0);
  for (int label : *labels) {
    if (label == kOutlierLabel)
      ++outliers;
    else
      ++sizes[static_cast<size_t>(label)];
  }
  for (size_t i = 0; i < sizes.size(); ++i)
    std::printf("cluster %zu: %zu points\n", i + 1, sizes[i]);
  std::printf("outliers: %zu\n", outliers);
  if (flags.Has("labels")) {
    if (Status status = WriteLabels(*labels, flags.Get("labels"));
        !status.ok())
      return Fail(status);
    std::printf("labels written to %s\n", flags.Get("labels").c_str());
  }
  return 0;
}

int CmdEvaluate(const Flags& flags) {
  if (!flags.Has("labels") || !flags.Has("truth")) {
    std::fprintf(stderr, "evaluate: --labels and --truth are required\n");
    return 2;
  }
  auto predicted = ReadLabels(flags.Get("labels"));
  if (!predicted.ok()) return Fail(predicted.status());
  auto truth = ReadLabels(flags.Get("truth"));
  if (!truth.ok()) return Fail(truth.status());
  if (predicted->size() != truth->size()) {
    std::fprintf(stderr, "evaluate: label counts differ (%zu vs %zu)\n",
                 predicted->size(), truth->size());
    return 1;
  }
  int max_predicted = 0, max_truth = 0;
  for (int label : *predicted) max_predicted = std::max(max_predicted, label);
  for (int label : *truth) max_truth = std::max(max_truth, label);
  auto confusion = ConfusionMatrix::Build(
      *predicted, static_cast<size_t>(max_predicted) + 1, *truth,
      static_cast<size_t>(max_truth) + 1);
  if (!confusion.ok()) return Fail(confusion.status());
  std::printf("points           %zu\n", predicted->size());
  std::printf("ARI              %.4f\n",
              AdjustedRandIndex(*predicted, *truth));
  std::printf("matched accuracy %.4f\n", MatchedAccuracy(*confusion));
  std::printf("dominant accuracy %.4f\n", confusion->DominantAccuracy());
  OutlierScore outliers = ScoreOutliers(*predicted, *truth);
  std::printf("outlier P/R/F1   %.4f / %.4f / %.4f\n", outliers.precision,
              outliers.recall, outliers.f1);
  return 0;
}

void Usage() {
  std::fprintf(stderr,
               "usage: proclus_cli <generate|fit|classify|evaluate> "
               "[--flag value ...]\n"
               "see the header of tools/proclus_cli.cc for flags\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  Flags flags(argc, argv, 2);
  if (!flags.ok()) {
    Usage();
    return 2;
  }
  std::string command = argv[1];
  if (command == "generate") return CmdGenerate(flags);
  if (command == "fit") return CmdFit(flags);
  if (command == "classify") return CmdClassify(flags);
  if (command == "evaluate") return CmdEvaluate(flags);
  Usage();
  return 2;
}
