"""`python3 tools/analyzer` runs the driver."""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import analyze

sys.exit(analyze.main())
