"""Fixture self-test: proves each rule fires where it must and stays
quiet where it must not.

Fixture layout (tools/analyzer/fixtures/<rule-name>/*.cc):

    // fixture-path: src/core/example.cc   <- virtual path the rule sees
    ... code ...
    bad_line();  // expect: rule-name      <- a finding MUST land here

Each fixture is checked against the rule named by its directory (plus
bare-allow, which may be expected anywhere): the set of (line, rule)
findings must equal the set of `// expect:` markers exactly — a missed
expectation and a stray finding are both failures. `pass_*.cc` fixtures
have no markers; `fail_*.cc` have at least one. The ctest entry
`analyzer_self_test` runs this via `analyze.py --self-test`.
"""

import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from rules import ALL_RULES, check_file

FIXTURES_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            "fixtures")
PATH_RE = re.compile(r"//\s*fixture-path:\s*(\S+)")
EXPECT_RE = re.compile(r"//\s*expect:\s*([a-z-]+)")


def run_fixture(parse, rule, path):
    with open(path, encoding="utf-8") as f:
        text = f.read()
    m = PATH_RE.search(text)
    if not m:
        return [f"{path}: missing `// fixture-path:` header"]
    virtual_path = m.group(1).replace("/", os.sep)
    expected = set()
    for line_no, line in enumerate(text.splitlines(), start=1):
        for em in EXPECT_RE.finditer(line):
            expected.add((line_no, em.group(1)))
    fir = parse(virtual_path, text)
    got = {(f.line, f.rule)
           for f in check_file(fir, [rule])
           if f.rule in (rule.name, "bare-allow")}
    errors = []
    rel = os.path.relpath(path, FIXTURES_DIR)
    for line, name in sorted(expected - got):
        errors.append(f"{rel}:{line}: expected [{name}] but the rule "
                      "stayed quiet")
    for line, name in sorted(got - expected):
        errors.append(f"{rel}:{line}: unexpected [{name}] finding")
    basename = os.path.basename(path)
    if basename.startswith("pass_") and expected:
        errors.append(f"{rel}: pass_ fixture must not carry expect markers")
    if basename.startswith("fail_") and not expected:
        errors.append(f"{rel}: fail_ fixture must carry expect markers")
    return errors


def main(root=".", frontend="auto"):
    del root  # fixtures are package-relative
    import analyze
    parse, frontend_name = analyze.pick_frontend(frontend)
    by_name = {r.name: r for r in ALL_RULES}
    failures = []
    total = 0
    for rule_dir in sorted(os.listdir(FIXTURES_DIR)):
        dir_path = os.path.join(FIXTURES_DIR, rule_dir)
        if not os.path.isdir(dir_path):
            continue
        rule = by_name.get(rule_dir)
        if rule is None:
            failures.append(f"{rule_dir}/: no rule with this name")
            continue
        names = sorted(n for n in os.listdir(dir_path) if n.endswith(".cc"))
        passing = [n for n in names if n.startswith("pass_")]
        failing = [n for n in names if n.startswith("fail_")]
        if len(passing) < 2 or len(failing) < 2:
            failures.append(
                f"{rule_dir}/: needs >=2 pass_ and >=2 fail_ fixtures "
                f"(found {len(passing)} pass, {len(failing)} fail)")
        for name in names:
            total += 1
            failures.extend(run_fixture(parse, rule,
                                        os.path.join(dir_path, name)))
    covered = {d for d in os.listdir(FIXTURES_DIR)
               if os.path.isdir(os.path.join(FIXTURES_DIR, d))}
    for rule in ALL_RULES:
        if rule.name not in covered:
            failures.append(f"rule [{rule.name}] has no fixtures directory")
    if failures:
        for failure in failures:
            print(f"analyzer self-test: {failure}", file=sys.stderr)
        print(f"analyzer self-test: FAILED ({len(failures)} problems, "
              f"{total} fixtures, frontend: {frontend_name})",
              file=sys.stderr)
        return 1
    print(f"analyzer self-test: OK ({total} fixtures across "
          f"{len(covered)} rules, frontend: {frontend_name})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
