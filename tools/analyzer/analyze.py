#!/usr/bin/env python3
"""Driver for the AST-level analyzer. See __init__.py for the rule list.

Usage:
    python3 tools/analyzer/analyze.py [--root DIR] [--frontend auto|clang|fallback]
                                      [--rule NAME ...] [--json FILE]
                                      [--self-test] [paths...]

Exit codes: 0 clean, 1 findings, 2 usage/toolchain error.

Frontends: `clang` lowers a real libclang AST (CI installs
`libclang==18.*`, pinned to the clang-tidy preset); `fallback` is a
pure-Python structural parser for the repo's Google-style subset. `auto`
(default) prefers clang and degrades to fallback with a notice —
mirroring how the tidy/tsa presets degrade without their toolchains.
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import microparse
import rules as rules_mod
from rules import ALL_RULES, RULE_NAMES, check_file

SOURCE_DIRS = ("src", "bench", "fuzz")
EXTS = (".h", ".cc")


def iter_source_files(root):
    for top in SOURCE_DIRS:
        top_path = os.path.join(root, top)
        if not os.path.isdir(top_path):
            continue
        for dirpath, dirnames, filenames in os.walk(top_path):
            dirnames.sort()
            for name in sorted(filenames):
                if name.endswith(EXTS):
                    yield os.path.relpath(os.path.join(dirpath, name), root)


def pick_frontend(requested):
    """Returns (parse_file(rel_path, text) -> FileIR, frontend_name)."""
    if requested in ("auto", "clang"):
        import clang_frontend
        if clang_frontend.available():
            return clang_frontend.parse_file, "clang"
        if requested == "clang":
            sys.stderr.write(
                "analyzer: --frontend clang requested but "
                + clang_frontend.missing_reason() + "\n")
            sys.exit(2)
        sys.stderr.write(
            "analyzer: note: " + clang_frontend.missing_reason()
            + "\nanalyzer: note: degrading to the fallback frontend "
            "(structure-accurate for this repo's subset; CI runs the "
            "clang frontend)\n")
    return microparse.parse_file, "fallback"


def resolve_rules(names):
    if not names:
        return list(ALL_RULES)
    by_name = {r.name: r for r in ALL_RULES}
    picked = []
    for name in names:
        if name not in by_name:
            sys.stderr.write(
                f"analyzer: unknown rule '{name}' (known: "
                f"{', '.join(RULE_NAMES)})\n")
            sys.exit(2)
        picked.append(by_name[name])
    return picked


def run(root, paths, frontend, rule_names, json_path):
    parse, frontend_name = pick_frontend(frontend)
    active = resolve_rules(rule_names)
    rel_paths = paths or list(iter_source_files(root))
    findings = []
    for rel_path in rel_paths:
        abs_path = os.path.join(root, rel_path)
        try:
            with open(abs_path, encoding="utf-8") as f:
                text = f.read()
        except OSError as exc:
            sys.stderr.write(f"analyzer: cannot read {rel_path}: {exc}\n")
            return 2
        fir = parse(rel_path.replace("\\", "/").replace("/", os.sep), text)
        findings.extend(check_file(fir, active))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    for finding in findings:
        print(finding)
    if json_path:
        with open(json_path, "w", encoding="utf-8") as f:
            json.dump({"frontend": frontend_name,
                       "files": len(rel_paths),
                       "findings": [fi.to_json() for fi in findings]},
                      f, indent=2)
            f.write("\n")
    n = len(findings)
    print(f"analyzer: {n} finding{'s' if n != 1 else ''} across "
          f"{len(rel_paths)} files (frontend: {frontend_name})",
          file=sys.stderr)
    return 1 if findings else 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="analyze.py",
        description="AST-level determinism & architecture analyzer")
    parser.add_argument("--root", default=".",
                        help="repo root (default: cwd)")
    parser.add_argument("--frontend", default="auto",
                        choices=("auto", "clang", "fallback"))
    parser.add_argument("--rule", action="append", default=[],
                        metavar="NAME",
                        help="run only this rule (repeatable)")
    parser.add_argument("--json", default="", metavar="FILE",
                        help="also write findings as JSON")
    parser.add_argument("--self-test", action="store_true",
                        help="run the fixture self-test and exit")
    parser.add_argument("paths", nargs="*",
                        help="specific files (relative to --root); "
                             "default: all of src/ bench/ fuzz/")
    args = parser.parse_args(argv)

    if args.self_test:
        import self_test
        return self_test.main(args.root, args.frontend)
    return run(args.root, args.paths, args.frontend, args.rule, args.json)


if __name__ == "__main__":
    sys.exit(main())
