"""Fallback frontend: a pure-Python structural parser for the Google-style
C++ subset this repo is written in.

Produces the same normalized IR (ir.py) as the libclang frontend: class
definitions with their base lists, function/method definitions, and a
statement tree (if/loop/switch/return/compound/expr) whose leaves are text
spans. It is NOT a general C++ parser — it leans on the repo's formatting
conventions (clang-format, member_ suffixes, no exceptions/gotos) — but it
is structure-accurate for the constructs the rules reason about, which is
what the regex linter fundamentally cannot be.
"""

import re

from ir import ClassIR, FileIR, FunctionIR, Node, extract_includes, \
    match_paren, strip_comments_and_strings

# A class/struct DEFINITION header: name, optional final, optional base
# list, then the opening brace. Forward declarations do not match (no
# brace), and `enum class` is excluded.
CLASS_RE = re.compile(
    r"\b(?<!enum )(class|struct)\s+(?:\[\[[^\]]*\]\]\s*)?([A-Za-z_]\w*)\s*"
    r"(?:final\s*)?(?::\s*([^{;]*))?\{")

# A function definition: optional specifiers, a return type (possibly
# templated / qualified / ref), a possibly-qualified name, and an open
# paren. Keyword-opened lines are excluded so `return Foo(x);` and
# `if (Bar(y))` are not mistaken for definitions. Constructors match via
# the qualified-name branch or inside class bodies.
FN_RE = re.compile(
    r"^[ \t]*(?!return\b|else\b|case\b|delete\b|new\b|if\b|for\b|while\b"
    r"|switch\b|do\b|using\b|typedef\b|throw\b|goto\b|co_return\b)"
    r"(?:template\s*<[^<>]*>\s*)?"
    r"(?:static\s+|inline\s+|constexpr\s+|explicit\s+|virtual\s+|friend\s+)*"
    r"[A-Za-z_][\w:]*(?:\s*<[^;{}()]*>)?(?:\s*[*&]+\s*|\s+)"
    r"(?:[A-Za-z_]\w*\s*::\s*)*(?P<name>[A-Za-z_~]\w*)\s*\(",
    re.MULTILINE)

# Constructors/destructors inside a class body: `  Name(...)` with no
# return type. Matched per class with the class name substituted in.
CTOR_TEMPLATE = (r"^[ \t]*(?:explicit\s+|constexpr\s+|virtual\s+)*"
                 r"(?P<name>~?{name})\s*\(")

KEYWORD_RE = re.compile(
    r"\b(if|for|while|do|switch|return)\b|[{{;]".replace("{{", "{"))


def parse_file(rel_path, text):
    code = strip_comments_and_strings(text)
    fir = FileIR(rel_path, text, code)
    fir.frontend = "fallback"
    fir.includes = extract_includes(text)
    fir.classes = _find_classes(code)
    fir.functions = _find_functions(code, fir.classes)
    for fn in fir.functions:
        fn.body = parse_statements(code, fn.body_start + 1, fn.body_end)
    # Attach methods to their enclosing (innermost) class.
    for fn in fir.functions:
        owner = None
        for cls in fir.classes:
            if cls.start < fn.params_start < cls.end:
                if owner is None or cls.start > owner.start:
                    owner = cls
        if owner is not None:
            fn.class_name = owner.name
            owner.methods.append(fn)
    return fir


def _find_classes(code):
    classes = []
    for m in CLASS_RE.finditer(code):
        open_brace = m.end() - 1
        close = match_paren(code, open_brace, "{", "}")
        if close == -1:
            continue
        bases = []
        if m.group(3):
            for part in m.group(3).split(","):
                part = re.sub(r"\b(public|protected|private|virtual)\b", "",
                              part).strip()
                # Drop template arguments: Base<T> -> Base.
                part = re.sub(r"<.*", "", part).strip()
                part = part.split("::")[-1].strip()
                if part:
                    bases.append(part)
        classes.append(ClassIR(m.group(2), bases, m.start(), close + 1))
    return classes


def _find_functions(code, classes):
    functions = []
    seen_bodies = set()

    def try_define(match, name):
        open_paren = code.find("(", match.start(), match.end() + 1)
        if open_paren == -1:
            return
        close_paren = match_paren(code, open_paren)
        if close_paren == -1:
            return
        # Walk specifiers/initializer lists to the body '{'; a ';' first
        # means declaration only. Constructor member-initializer lists
        # contain commas/parens/braces — skip balanced groups.
        j = close_paren + 1
        n = len(code)
        while j < n and code[j] not in "{;":
            if code[j] == "(":
                j = match_paren(code, j)
                if j == -1:
                    return
            j += 1
        if j >= n or code[j] == ";":
            return
        # Reject control-flow false positives: `} else if (...) {` etc.
        # never match FN_RE thanks to its keyword guard, but initializer
        # lists in constructors can contain `{`-init of members before the
        # body; match_paren above already skipped parens, and brace-init
        # members (`: member_{x} {`) are rare enough here to accept.
        body_close = match_paren(code, j, "{", "}")
        if body_close == -1:
            return
        if j in seen_bodies:
            return
        seen_bodies.add(j)
        functions.append(FunctionIR(name, "", open_paren, close_paren + 1,
                                    j, body_close + 1))

    for m in FN_RE.finditer(code):
        try_define(m, m.group("name"))
    for cls in classes:
        pattern = re.compile(CTOR_TEMPLATE.format(name=re.escape(cls.name)),
                             re.MULTILINE)
        for m in pattern.finditer(code, cls.start, cls.end):
            try_define(m, m.group("name"))
    functions.sort(key=lambda f: f.params_start)
    return functions


def _skip_ws(code, i, end):
    while i < end and code[i] in " \t\n":
        i += 1
    return i


def _stmt_end(code, i, end):
    """End offset (past ';') of a generic statement starting at i: the
    first ';' at zero relative paren/brace/bracket depth (lambdas and
    brace-inits keep their semicolons internal)."""
    depth = 0
    while i < end:
        c = code[i]
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
            if depth < 0:
                return i  # malformed/end of enclosing block
        elif c == ";" and depth == 0:
            return i + 1
        i += 1
    return end


def _parse_block_or_stmt(code, i, end):
    """Parses either a braced block or a single statement; returns
    (list_of_nodes, end_offset)."""
    i = _skip_ws(code, i, end)
    if i < end and code[i] == "{":
        close = match_paren(code, i, "{", "}")
        if close == -1:
            return [], end
        return parse_statements(code, i + 1, close), close + 1
    nodes = parse_one(code, i, end)
    if nodes is None:
        return [], end
    node, nxt = nodes
    return [node], nxt


def parse_one(code, i, end):
    """Parses one statement at offset i; returns (Node, next_offset) or
    None at end of input."""
    i = _skip_ws(code, i, end)
    if i >= end:
        return None
    # Preprocessor directive: to end of (continued) line.
    if code[i] == "#":
        j = i
        while j < end:
            k = code.find("\n", j, end)
            if k == -1:
                j = end
                break
            if code[k - 1] == "\\":
                j = k + 1
                continue
            j = k + 1
            break
        return Node("expr", i, j), j
    if code[i] == "{":
        close = match_paren(code, i, "{", "}")
        if close == -1:
            return Node("expr", i, end), end
        node = Node("compound", i, close + 1)
        node.body = parse_statements(code, i + 1, close)
        return node, close + 1
    if code[i] == ";":
        return Node("expr", i, i + 1), i + 1
    m = re.match(r"(if|for|while|do|switch|return|case|default|break|"
                 r"continue|else)\b", code[i:end])
    kw = m.group(1) if m else None

    if kw == "if":
        open_paren = code.find("(", i, end)
        if open_paren == -1:
            j = _stmt_end(code, i, end)
            return Node("expr", i, j), j
        # `if constexpr (...)` also lands here; fine.
        close = match_paren(code, open_paren)
        if close == -1:
            j = _stmt_end(code, i, end)
            return Node("expr", i, j), j
        node = Node("if", i, end)
        node.cond_start, node.cond_end = open_paren + 1, close
        node.then_, j = _parse_block_or_stmt(code, close + 1, end)
        k = _skip_ws(code, j, end)
        if re.match(r"else\b", code[k:end]):
            node.else_, j = _parse_block_or_stmt(code, k + 4, end)
        node.end = j
        return node, j

    if kw in ("for", "while"):
        open_paren = code.find("(", i, end)
        close = match_paren(code, open_paren) if open_paren != -1 else -1
        if close == -1:
            j = _stmt_end(code, i, end)
            return Node("expr", i, j), j
        node = Node("loop", i, end)
        node.cond_start, node.cond_end = open_paren + 1, close
        header = code[open_paren + 1:close]
        if kw == "for":
            node.loop_kind = ("range-for"
                              if _top_level_colon(header) else "for")
        else:
            node.loop_kind = "while"
        node.body, j = _parse_block_or_stmt(code, close + 1, end)
        node.end = j
        return node, j

    if kw == "do":
        node = Node("loop", i, end)
        node.loop_kind = "do"
        node.body, j = _parse_block_or_stmt(code, i + 2, end)
        # Trailing `while (...);`
        k = _skip_ws(code, j, end)
        if re.match(r"while\b", code[k:end]):
            open_paren = code.find("(", k, end)
            close = match_paren(code, open_paren) if open_paren != -1 else -1
            if close != -1:
                node.cond_start, node.cond_end = open_paren + 1, close
                j = close + 1
                k = _skip_ws(code, j, end)
                if k < end and code[k] == ";":
                    j = k + 1
        node.end = j
        return node, j

    if kw == "switch":
        open_paren = code.find("(", i, end)
        close = match_paren(code, open_paren) if open_paren != -1 else -1
        if close == -1:
            j = _stmt_end(code, i, end)
            return Node("expr", i, j), j
        node = Node("switch", i, end)
        node.cond_start, node.cond_end = open_paren + 1, close
        node.body, j = _parse_block_or_stmt(code, close + 1, end)
        node.end = j
        return node, j

    if kw == "return":
        j = _stmt_end(code, i, end)
        return Node("return", i, j), j

    if kw in ("case", "default"):
        # Consume up to the ':' label separator (skipping '::'), then let
        # the scanner continue with the labeled statement.
        j = i
        while j < end:
            if code[j] == ":" and code[j - 1:j] != ":" and \
                    code[j + 1:j + 2] != ":":
                j += 1
                break
            if code[j] == ";":
                break
            j += 1
        return Node("expr", i, j), j

    # Generic statement (declaration, expression, break/continue, ...).
    j = _stmt_end(code, i, end)
    return Node("expr", i, j), j


def parse_statements(code, start, end):
    nodes = []
    i = start
    while True:
        parsed = parse_one(code, i, end)
        if parsed is None:
            break
        node, nxt = parsed
        if nxt <= i:  # no progress safeguard
            break
        nodes.append(node)
        i = nxt
    return nodes


def _top_level_colon(header):
    """True if `header` (a for-parens interior) has a top-level ':' that is
    not part of '::' — i.e. the loop is a range-for."""
    depth = 0
    for k, ch in enumerate(header):
        if ch in "([{<":
            depth += 1
        elif ch in ")]}>":
            depth -= 1
        elif (ch == ":" and depth == 0 and
              header[k - 1:k] != ":" and header[k + 1:k + 2] != ":"):
            return True
    return False
