"""Normalized AST IR shared by the libclang and fallback frontends.

The IR keeps structure where the rules need structure (classes, bases,
functions, control-flow statements) and text offsets where they do not
(expressions). Every node carries [start, end) offsets into the file's
comment-stripped text, which is built to be strictly length-preserving so
offsets are valid in the original text too — line numbers and trailing
`// analyzer:allow` comments resolve against the original lines.
"""

import re


class Node:
    """One statement. `kind` is one of:

    'if'        cond span + then_/else_ child lists
    'loop'      header span (everything inside the for/while parens; empty
                for `do`) + body list; `loop_kind` in
                {'for', 'range-for', 'while', 'do'}
    'switch'    cond span + body list (cases are not split out; every
                statement in the body is conditionally executed)
    'return'    expression text span
    'compound'  bare `{ ... }` block
    'expr'      any other single statement (declarations included)
    """

    __slots__ = ("kind", "start", "end", "cond_start", "cond_end",
                 "then_", "else_", "body", "loop_kind")

    def __init__(self, kind, start, end):
        self.kind = kind
        self.start = start
        self.end = end
        self.cond_start = self.cond_end = -1
        self.then_ = []
        self.else_ = []
        self.body = []
        self.loop_kind = ""

    def children(self):
        yield from self.then_
        yield from self.else_
        yield from self.body

    def walk(self):
        yield self
        for child in self.children():
            yield from child.walk()


class FunctionIR:
    __slots__ = ("name", "class_name", "params_start", "params_end",
                 "body_start", "body_end", "start", "body")

    def __init__(self, name, class_name, params_start, params_end,
                 body_start, body_end):
        self.name = name
        self.class_name = class_name  # "" for free functions
        self.params_start = params_start  # span of (...) incl. parens
        self.params_end = params_end
        self.body_start = body_start  # span of { ... } incl. braces
        self.body_end = body_end
        self.start = params_start
        self.body = []  # list of Node

    def walk_statements(self):
        for stmt in self.body:
            yield from stmt.walk()


class ClassIR:
    __slots__ = ("name", "bases", "start", "end", "methods")

    def __init__(self, name, bases, start, end):
        self.name = name
        self.bases = bases  # list of base-class name strings
        self.start = start
        self.end = end
        self.methods = []  # list of FunctionIR


class FileIR:
    """Parsed view of one source file.

    text      original file contents
    code      comment/string-stripped contents, len(code) == len(text)
    lines     original text split into lines
    includes  [(line_number, include_path)] for quoted includes
    classes   list of ClassIR (definitions only)
    functions list of FunctionIR — free functions AND methods (methods are
              also reachable via their ClassIR)
    frontend  'clang' or 'fallback' (diagnostic only)
    """

    def __init__(self, rel_path, text, code):
        self.rel_path = rel_path
        self.text = text
        self.code = code
        self.lines = text.splitlines()
        self.includes = []
        self.classes = []
        self.functions = []
        self.frontend = ""

    def line_of(self, offset):
        return self.code.count("\n", 0, offset) + 1


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def to_json(self):
        return {"path": self.path, "line": self.line, "rule": self.rule,
                "message": self.message}


def strip_comments_and_strings(text):
    """Length-preserving strip: comments and string/char-literal contents
    become spaces (newlines kept), so every offset in the result is valid
    in the original text. Handles //, /* */, "...", '...', and raw strings.
    """
    out = []
    i, n = 0, len(text)

    def blank(span):
        out.extend("\n" if ch == "\n" else " " for ch in span)

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            blank(text[i:j])
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            blank(text[i:j])
            i = j
        elif c == "R" and nxt == '"':
            m = re.match(r'R"([^()\s\\]*)\(', text[i:])
            if m:
                close = ")" + m.group(1) + '"'
                end = text.find(close, i + m.end())
                end = n if end == -1 else end + len(close)
                # R" ...blanked... " — same length as the original literal.
                out.append("R")
                out.append('"')
                blank(text[i + 2:end - 1])
                out.append('"' if end > i + 2 else "")
                i = end
            else:
                out.append(c)
                i += 1
        elif c == '"' or c == "'":
            quote = c
            out.append(quote)
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    blank(text[i:i + 2])
                    i += 2
                else:
                    blank(text[i])
                    i += 1
            if i < n:
                out.append(quote)
                i += 1
        else:
            out.append(c)
            i += 1
    result = "".join(out)
    assert len(result) == len(text), "strip must preserve offsets"
    return result


def match_paren(code, open_pos, open_ch="(", close_ch=")"):
    """Offset of the close matching code[open_pos] == open_ch, or -1."""
    depth, i, n = 0, open_pos, len(code)
    while i < n:
        if code[i] == open_ch:
            depth += 1
        elif code[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return -1


ALLOW_RE = re.compile(
    r"analyzer:allow\(([a-z-]+)\)(?::\s*(\S.*\S|\S))?")


def comment_context(lines, line_no):
    """The original-text line plus the contiguous //-comment block directly
    above it (comments are stripped from `code`, so annotation lookups read
    the original lines)."""
    if line_no < 1 or line_no > len(lines):
        return []
    context = [lines[line_no - 1]]
    prev = line_no - 2
    while prev >= 0 and lines[prev].lstrip().startswith("//"):
        context.append(lines[prev])
        prev -= 1
    return context


def find_allows(lines, line_no):
    """[(rule, rationale-or-None)] from the line and its comment block."""
    allows = []
    for line in comment_context(lines, line_no):
        for m in ALLOW_RE.finditer(line):
            allows.append((m.group(1), m.group(2)))
    return allows


def extract_includes(text):
    """[(line_number, path)] for every quoted #include in the ORIGINAL
    text (includes live outside comments in practice; string-stripping
    would erase the path)."""
    includes = []
    for i, line in enumerate(text.splitlines(), start=1):
        m = re.match(r'\s*#\s*include\s+"([^"]+)"', line)
        if m:
            includes.append((i, m.group(1)))
    return includes
