"""The analyzer's rule engine and the five AST-level rules.

Each rule consumes a FileIR (ir.py) — produced by either frontend — and
yields Findings. Suppression mirrors tools/lint.py's UX but with a
mandatory rationale:

    offending();  // analyzer:allow(rule-name): why this is safe here

A bare `analyzer:allow(rule)` with no `: rationale` is itself reported
(rule `bare-allow`): the acceptance bar for this tree is that every
suppression carries a written justification.
"""

import os
import re

from ir import Finding, comment_context, find_allows, match_paren

# ---------------------------------------------------------------------------
# Shared helpers


def conditional_spans(code, start, end):
    """Character spans inside [start, end) that are only conditionally
    evaluated WITHIN one expression: everything after a top-level or
    nested `&&`/`||` up to the close of its paren group, and both arms of
    a `?:` ternary. Over-approximates slightly (a span runs to the end of
    its enclosing group), which errs toward reporting — the right bias
    for a determinism check.
    """
    spans = []
    stack = [end]  # close offset of each open paren group
    i = start
    while i < end:
        c = code[i]
        if c == "(":
            close = match_paren(code, i)
            stack.append(close if close != -1 else end)
        elif c == ")":
            if len(stack) > 1:
                stack.pop()
        elif c == "&" and code[i + 1:i + 2] == "&":
            spans.append((i + 2, stack[-1]))
            i += 1
        elif c == "|" and code[i + 1:i + 2] == "|":
            spans.append((i + 2, stack[-1]))
            i += 1
        elif c == "?" and code[i + 1:i + 2] not in (":", "?") and \
                code[i - 1:i] != "?":
            # Ternary: conditional from the '?' to the end of the
            # enclosing group. (Skips '::', '?:' never appears spaced.)
            spans.append((i + 1, stack[-1]))
        i += 1
    return spans


def in_any_span(offset, spans):
    return any(s <= offset < e for s, e in spans)


def first_subscript(expr):
    """The trimmed text of the first [...] subscript in expr, or None."""
    pos = expr.find("[")
    if pos == -1:
        return None
    close = match_paren(expr, pos, "[", "]")
    if close == -1:
        return None
    return expr[pos + 1:close].strip()


ASSIGN_RE = re.compile(
    r"(?P<lhs>[^=!<>+\-*/|&^;{}]+?)\s*"
    r"(?P<op>=|\+=|-=|\*=|/=|\|=|&=|\^=|<<=|>>=)(?!=)")
INCDEC_RE = re.compile(r"(?:\+\+|--)\s*(?P<post>[A-Za-z_][\w.\->\[\]]*)"
                       r"|(?P<pre>[A-Za-z_][\w.\->\[\]]*)\s*(?:\+\+|--)")


def statement_texts(fn, code):
    """Yields (node, text, abs_start) for every leaf-ish statement text in
    a function body: expr/decl/return statements plus if/loop/switch
    condition-or-header texts."""
    for node in fn.walk_statements():
        if node.kind in ("expr", "return"):
            yield node, code[node.start:node.end], node.start
        elif node.kind in ("if", "loop", "switch") and node.cond_start >= 0:
            yield node, code[node.cond_start:node.cond_end], node.cond_start


# ---------------------------------------------------------------------------
# Rule base


class Rule:
    name = ""
    description = ""

    def applies_to(self, rel_path):
        raise NotImplementedError

    def check(self, fir):
        """Yields Finding objects (pre-suppression)."""
        raise NotImplementedError


def _under(rel_path, *dirs):
    return any(rel_path == d or rel_path.startswith(d + os.sep)
               for d in dirs)


# ---------------------------------------------------------------------------
# rng-draw-invariance

RNG_DRAW_METHODS = ("Next", "UniformDouble", "Uniform", "UniformInt",
                    "Bernoulli", "Normal", "Exponential", "Poisson",
                    "Shuffle", "SampleWithoutReplacement", "Fork")

RNG_DECL_RE = re.compile(r"\bRng\s*[&*]?\s+([A-Za-z_]\w*)\b")
DRAW_ANNOTATION = "draws: invariant"


class RngDrawInvariance(Rule):
    """Any Rng draw on a conditionally executed path (if/else branch,
    switch body, ternary arm, short-circuit RHS) makes the number of
    draws data-dependent, which desynchronizes the deterministic stream
    that the fused 2-scan climb's speculative dual-branch identity (and
    checkpoint/resume) depend on. Hoist the draw above the branch, or
    annotate the site `// draws: invariant` with an argument for why
    every path draws the same count.
    """

    name = "rng-draw-invariance"
    description = "Rng draws must not be conditionally executed"

    ALLOWLIST = (os.path.join("src", "common", "rng.h"),
                 os.path.join("src", "common", "rng.cc"))

    def applies_to(self, rel_path):
        return _under(rel_path, "src") and rel_path not in self.ALLOWLIST

    def check(self, fir):
        code = fir.code
        for fn in fir.functions:
            fn_text = code[fn.params_start:fn.body_end]
            names = set(RNG_DECL_RE.findall(fn_text))
            if not names:
                continue
            draw_re = re.compile(
                r"\b(" + "|".join(re.escape(n) for n in sorted(names)) +
                r")\s*\.\s*(" + "|".join(RNG_DRAW_METHODS) + r")\s*\(")
            # 1. Statement-level: draws inside if/else branches and switch
            #    bodies. Conditions and loop headers/bodies are
            #    unconditionally reached, so they are exempt (a loop
            #    draws a data-independent count when its trip count is —
            #    trip counts are the caller's contract, not this rule's).
            cond_stmt_spans = []
            for node in fn.walk_statements():
                if node.kind == "if":
                    for branch in (node.then_, node.else_):
                        for child in branch:
                            cond_stmt_spans.append((child.start, child.end,
                                                    fir.line_of(node.start)))
                elif node.kind == "switch":
                    for child in node.body:
                        cond_stmt_spans.append((child.start, child.end,
                                                fir.line_of(node.start)))
            # 2. Expression-level: draws after `&&`/`||` or `?` within any
            #    statement/condition text.
            expr_spans = []
            for node, _text, abs_start in statement_texts(fn, code):
                stmt_end = (node.cond_end if node.kind in
                            ("if", "loop", "switch") else node.end)
                for s, e in conditional_spans(code, abs_start, stmt_end):
                    expr_spans.append((s, e, fir.line_of(abs_start)))
            for m in draw_re.finditer(code, fn.body_start, fn.body_end):
                reason = None
                for s, e, hdr_line in cond_stmt_spans:
                    if s <= m.start() < e:
                        reason = ("conditionally executed statement "
                                  f"(branch opened on line {hdr_line})")
                        break
                if reason is None:
                    for s, e, hdr_line in expr_spans:
                        if s <= m.start() < e:
                            reason = ("short-circuit/ternary operand "
                                      f"(expression on line {hdr_line})")
                            break
                if reason is None:
                    continue
                line = fir.line_of(m.start())
                if self._annotated(fir, line, cond_stmt_spans, m.start()):
                    continue
                yield Finding(
                    fir.rel_path, line, self.name,
                    f"Rng draw {m.group(1)}.{m.group(2)}() on a {reason}: "
                    "a data-dependent draw count desynchronizes the "
                    "deterministic stream (speculative dual-branch "
                    "identity, checkpoint/resume). Hoist the draw above "
                    "the branch, or annotate `// draws: invariant` with "
                    "why every path draws equally")

    @staticmethod
    def _annotated(fir, line, cond_stmt_spans, offset):
        if any(DRAW_ANNOTATION in ln
               for ln in comment_context(fir.lines, line)):
            return True
        # The annotation may also sit on the branch header line.
        for s, e, hdr_line in cond_stmt_spans:
            if s <= offset < e and any(
                    DRAW_ANNOTATION in ln
                    for ln in comment_context(fir.lines, hdr_line)):
                return True
        return False


# ---------------------------------------------------------------------------
# fp-accumulation-order

REASSOC_CALL_RE = re.compile(
    r"std\s*::\s*(accumulate|reduce|transform_reduce|inner_product)\s*[<(]")
FLOAT_DECL_TEMPLATE = r"\b(?:double|float)\s+(?:[*&]\s*)?{name}\b"
COMPOUND_ADD_RE = re.compile(r"\b([A-Za-z_]\w*)\s*(?:\+=|-=)")


class FpAccumulationOrder(Rule):
    """Bit-identity pins every floating-point reduction to one evaluation
    order: per-point ascending, merged in ascending block order
    (DESIGN.md §7/§9). In src/core and src/distance, flag (a)
    std::accumulate/reduce/transform_reduce/inner_product — idioms whose
    operand order is an implementation detail or an invitation to
    reassociate — and (b) loops that iterate backwards while compound-
    adding into a floating-point local. The blessed kernel layer
    (distance/batch.*) is exempt: its tiled order is the contract the
    property tests pin down.
    """

    name = "fp-accumulation-order"
    description = "floating-point reductions must accumulate in ascending order"

    SCOPE = (os.path.join("src", "core"), os.path.join("src", "distance"))
    ALLOWLIST = (os.path.join("src", "distance", "batch.h"),
                 os.path.join("src", "distance", "batch.cc"))

    def applies_to(self, rel_path):
        return _under(rel_path, *self.SCOPE) and \
            rel_path not in self.ALLOWLIST

    def check(self, fir):
        code = fir.code
        for m in REASSOC_CALL_RE.finditer(code):
            yield Finding(
                fir.rel_path, fir.line_of(m.start()), self.name,
                f"std::{m.group(1)} hides the accumulation order of a "
                "floating-point reduction (and std::reduce may "
                "reassociate); write the explicit ascending loop, or move "
                "the reduction into the blessed kernel layer "
                "(distance/batch.h)")
        for fn in fir.functions:
            fn_text = code[fn.body_start:fn.body_end]
            for node in fn.walk_statements():
                if node.kind != "loop" or node.cond_start < 0:
                    continue
                header = code[node.cond_start:node.cond_end]
                if not self._descending(header, node.loop_kind):
                    continue
                body_start = node.cond_end
                for add in COMPOUND_ADD_RE.finditer(code, body_start,
                                                    node.end):
                    target = add.group(1)
                    if not re.search(
                            FLOAT_DECL_TEMPLATE.format(
                                name=re.escape(target)), fn_text):
                        continue
                    yield Finding(
                        fir.rel_path, fir.line_of(add.start()), self.name,
                        f"floating-point accumulator '{target}' is built "
                        "by a loop that iterates backwards "
                        f"({header.strip()!r}); FP addition is not "
                        "associative, so only the ascending per-point "
                        "order is bit-identical to the goldens — iterate "
                        "ascending or hand the reduction to "
                        "distance/batch.h")

    @staticmethod
    def _descending(header, loop_kind):
        if loop_kind == "range-for":
            return bool(re.search(r"\brbegin\b|\breverse\b", header))
        if loop_kind == "for":
            clauses = header.split(";")
            if len(clauses) >= 3 and re.search(r"--|-=", clauses[2]):
                return True
            return False
        # while/do: a `--` in the condition is the idiomatic countdown.
        return bool(re.search(r"--", header))


# ---------------------------------------------------------------------------
# consumer-lifecycle


class ConsumerLifecycle(Rule):
    """The commit-on-Merge contract (DESIGN.md §10, data/engine.h): every
    ScanConsumer subclass must (a) explicitly override Reset() — the
    rollback hook the executor's retry path calls; a silently inherited
    no-op is indistinguishable from an unconsidered one — (b) write only
    block-/row-keyed state from ConsumeBlock (an unsubscripted member
    write from the concurrent region races across blocks and mutates
    merged state outside Merge), and (c) not retain raw pointers into the
    block's scratch span except in per-block slots keyed by block_index.
    """

    name = "consumer-lifecycle"
    description = "ScanConsumer subclasses must honor the commit-on-Merge contract"

    def applies_to(self, rel_path):
        return _under(rel_path, "src")

    def check(self, fir):
        code = fir.code
        for cls in fir.classes:
            if "ScanConsumer" not in cls.bases:
                continue
            method_names = {m.name for m in cls.methods}
            # Header-declared overrides without inline bodies do not parse
            # as FunctionIR methods; fall back to a declaration scan.
            body_text = code[cls.start:cls.end]
            declares_reset = ("Reset" in method_names or
                              re.search(r"\bReset\s*\(\s*\)", body_text))
            if not declares_reset:
                yield Finding(
                    fir.rel_path, fir.line_of(cls.start), self.name,
                    f"ScanConsumer subclass '{cls.name}' does not override "
                    "Reset(): the executor's fault-retry path calls "
                    "Reset() to roll back a failed scan attempt, and the "
                    "contract must be acknowledged explicitly — override "
                    "it (an empty body with a comment is fine when "
                    "Prepare() fully re-initializes every partial that "
                    "Merge() reads)")
            for method in cls.methods:
                if method.name != "ConsumeBlock":
                    continue
                yield from self._check_consume_block(fir, cls, method)

    def _check_consume_block(self, fir, cls, method):
        code = fir.code
        params = self._param_names(code, method)
        block_param = params[0] if params else "block_index"
        data_param = params[2] if len(params) > 2 else "data"
        data_ptr_re = re.compile(
            r"\b" + re.escape(data_param) + r"\s*\.\s*data\s*\(" +
            r"|&\s*" + re.escape(data_param) + r"\s*\[")
        for node, text, abs_start in statement_texts(method, code):
            if node.kind != "expr":
                continue
            for m in ASSIGN_RE.finditer(text):
                lhs = m.group("lhs").strip()
                lhs = lhs.split(";")[-1].strip()  # last stmt on the line
                root = self._member_root(lhs)
                if root is None:
                    continue
                line = fir.line_of(abs_start + m.start("lhs"))
                if "[" not in lhs:
                    yield Finding(
                        fir.rel_path, line, self.name,
                        f"'{cls.name}::ConsumeBlock' writes member "
                        f"'{root}' without a block/row subscript: "
                        "ConsumeBlock runs concurrently for distinct "
                        "blocks, so unkeyed member writes race and mutate "
                        "merged state outside Merge() — key the write by "
                        f"{block_param} (or first_row range), or move it "
                        "to Merge()")
                    continue
                rhs = text[m.end():]
                rhs = rhs.split(";")[0]
                if data_ptr_re.search(rhs):
                    sub = first_subscript(lhs)
                    if sub != block_param:
                        yield Finding(
                            fir.rel_path, line, self.name,
                            f"'{cls.name}::ConsumeBlock' stores a raw "
                            f"pointer into the '{data_param}' block span "
                            f"in member '{root}' not keyed by "
                            f"{block_param}: the span only lives for this "
                            "call, so a retained pointer dangles across "
                            "blocks/scans — copy the values, or key the "
                            f"slot by {block_param}")
            for m in INCDEC_RE.finditer(text):
                target = (m.group("post") or m.group("pre")).strip()
                root = self._member_root(target)
                if root is None or "[" in target:
                    continue
                yield Finding(
                    fir.rel_path, fir.line_of(abs_start + m.start()),
                    self.name,
                    f"'{cls.name}::ConsumeBlock' increments member "
                    f"'{root}' without a block/row subscript: "
                    "ConsumeBlock runs concurrently for distinct blocks, "
                    "so unkeyed member updates race and mutate merged "
                    f"state outside Merge() — key by {block_param}, or "
                    "count into a per-block slot and sum in Merge()")

    @staticmethod
    def _param_names(code, method):
        params_text = code[method.params_start + 1:method.params_end - 1]
        names = []
        depth = 0
        current = ""
        for ch in params_text + ",":
            if ch in "<([{":
                depth += 1
            elif ch in ">)]}":
                depth -= 1
            if ch == "," and depth == 0:
                m = re.search(r"([A-Za-z_]\w*)\s*(?:=[^,]*)?$",
                              current.strip())
                names.append(m.group(1) if m else "")
                current = ""
            else:
                current += ch
        return names

    @staticmethod
    def _member_root(lhs):
        """The member name if lhs is rooted at a data member (this-> or
        the trailing-underscore convention), else None."""
        lhs = lhs.strip()
        m = re.match(r"(?:\(?\s*\*?\s*this->\s*)?([A-Za-z_]\w*)", lhs)
        if not m:
            return None
        root = m.group(1)
        if "this->" in lhs[:m.end()] or root.endswith("_"):
            return root
        return None


# ---------------------------------------------------------------------------
# layer-dag

LAYERS = {
    "common": 0,
    "data": 1,
    "distance": 2,
    "gen": 2,
    "sketch": 3,
    "core": 4,
    "clique": 4,
    "baselines": 4,
    "eval": 5,
    "extensions": 5,
}
DAG_TEXT = ("common -> data -> distance/gen -> sketch -> "
            "core/clique/baselines -> eval/extensions")


class LayerDag(Rule):
    """The architecture's include DAG, formerly tribal knowledge: a
    src/<dir> file may include its own directory and strictly lower
    layers only. Back-edges (lower including higher) and lateral edges
    (two directories on the same layer) are both errors — each is a cycle
    or a cycle-in-waiting, and the shard-parallel refactor is about to
    reshuffle src/data under this contract.
    """

    name = "layer-dag"
    description = "src include graph must follow the layer DAG"

    def applies_to(self, rel_path):
        return _under(rel_path, "src")

    def check(self, fir):
        parts = fir.rel_path.split(os.sep)
        if len(parts) < 3 or parts[1] not in LAYERS:
            return
        own = parts[1]
        own_layer = LAYERS[own]
        for line, inc in fir.includes:
            inc_parts = inc.split("/")
            if inc_parts[0] == "src":
                inc_parts = inc_parts[1:]
            inc_dir = inc_parts[0] if inc_parts else ""
            if inc_dir not in LAYERS or inc_dir == own:
                continue
            tgt_layer = LAYERS[inc_dir]
            if tgt_layer > own_layer:
                yield Finding(
                    fir.rel_path, line, self.name,
                    f"back-edge in the layer DAG: src/{own} (layer "
                    f"{own_layer}) includes \"{inc}\" from src/{inc_dir} "
                    f"(layer {tgt_layer}); the architecture is {DAG_TEXT} "
                    "— move the shared declaration down a layer or invert "
                    "the dependency")
            elif tgt_layer == own_layer:
                yield Finding(
                    fir.rel_path, line, self.name,
                    f"lateral edge in the layer DAG: src/{own} and "
                    f"src/{inc_dir} sit on the same layer ({own_layer}) "
                    f"of {DAG_TEXT}, so \"{inc}\" creates a cycle or a "
                    "cycle-in-waiting — route the shared piece through a "
                    "lower layer")


# ---------------------------------------------------------------------------
# status-flow

RESULT_DECL_RE = re.compile(r"\bResult\s*<[^;{}()=]*>\s+([A-Za-z_]\w*)")
VALUE_CALL_RE = re.compile(
    r"(?:std\s*::\s*move\s*\(\s*([A-Za-z_]\w*)\s*\)|\b([A-Za-z_]\w*))"
    r"\s*\.\s*value\s*\(\s*\)")


class StatusFlow(Rule):
    """AST-accurate replacement for lint.py's retired regex rule
    `result-unchecked`: value()/'*'/'->' on a Result must be DOMINATED by
    an ok() check — `if (!x.ok()) return ...;` early-exit,
    PROCLUS_RETURN_IF_ERROR(x.status()), PROCLUS_CHECK(x.ok()), or use
    inside an `if (x.ok())` branch. The regex version accepted any
    textually earlier `.ok()`, including one in a sibling branch that
    never executes before the use; this version tracks dominance through
    the statement tree.
    """

    name = "status-flow"
    description = "Result access must be dominated by an ok() check"

    SCOPE = ("src", "bench", "fuzz")
    ALLOWLIST = (os.path.join("src", "common", "status.h"),)

    def applies_to(self, rel_path):
        return _under(rel_path, *self.SCOPE) and \
            rel_path not in self.ALLOWLIST

    def check(self, fir):
        code = fir.code
        for fn in fir.functions:
            result_locals = set(
                RESULT_DECL_RE.findall(code[fn.params_start:fn.body_end]))
            findings = []
            self._walk(fir, fn.body, set(), result_locals, findings)
            yield from findings

    # -- dominance walk ----------------------------------------------------

    def _walk(self, fir, stmts, checked, result_locals, findings):
        """Walks a statement list; returns the checked-set guaranteed to
        hold after the list for statements that follow it."""
        code = fir.code
        for node in stmts:
            if node.kind == "if":
                cond = code[node.cond_start:node.cond_end]
                self._scan_text(fir, cond, node.cond_start, checked,
                                result_locals, findings)
                neg = self._neg_ok_name(cond)
                pos = self._pos_ok_name(cond)
                then_checked = set(checked)
                if pos:
                    then_checked.add(pos)
                self._walk(fir, node.then_, then_checked, result_locals,
                           findings)
                else_checked = set(checked)
                if neg:
                    else_checked.add(neg)
                self._walk(fir, node.else_, else_checked, result_locals,
                           findings)
                if neg and not node.else_ and self._terminates(node.then_,
                                                               code):
                    checked.add(neg)  # early-exit dominates the rest
            elif node.kind in ("loop", "switch"):
                if node.cond_start >= 0:
                    self._scan_text(fir, code[node.cond_start:node.cond_end],
                                    node.cond_start, checked, result_locals,
                                    findings)
                # Body may run zero times: additions do not escape.
                self._walk(fir, node.body, set(checked), result_locals,
                           findings)
            elif node.kind == "compound":
                # Sequential block: checks established inside dominate
                # what follows.
                self._walk(fir, node.body, checked, result_locals, findings)
            else:  # expr / return
                self._scan_text(fir, code[node.start:node.end], node.start,
                                checked, result_locals, findings)
        return checked

    def _scan_text(self, fir, text, abs_start, checked, result_locals,
                   findings):
        """Processes one expression/statement text left to right: guard
        patterns update `checked` at their offset; uses before a guard of
        the same name are findings."""
        events = []  # (offset, kind, name)
        for m in re.finditer(
                r"PROCLUS_RETURN_IF_ERROR\s*\(\s*([A-Za-z_]\w*)\s*\.\s*"
                r"status\s*\(", text):
            events.append((m.start(), "guard", m.group(1)))
        for m in re.finditer(
                r"(?:PROCLUS_CHECK|ASSERT_TRUE|EXPECT_TRUE|assert)\s*\(\s*"
                r"([A-Za-z_]\w*)\s*\.\s*ok\s*\(", text):
            events.append((m.start(), "guard", m.group(1)))
        # `x.ok() && use(*x)` within one expression: the ok() call guards
        # everything after it in the same text.
        for m in re.finditer(r"\b([A-Za-z_]\w*)\s*\.\s*ok\s*\(\s*\)\s*&&",
                             text):
            events.append((m.start(), "guard", m.group(1)))
        for m in VALUE_CALL_RE.finditer(text):
            name = m.group(1) or m.group(2)
            events.append((m.start(), "use-value", name))
        for name in result_locals:
            esc = re.escape(name)
            deref = re.compile(
                r"(?:\breturn\s+|[=(,;{]\s*|^\s*)\*\s*" + esc + r"\b"
                r"|\b" + esc + r"\s*->")
            for m in deref.finditer(text):
                events.append((m.start(), "use-deref", name))
        events.sort(key=lambda e: e[0])
        local_checked = set(checked)
        for offset, kind, name in events:
            if kind == "guard":
                local_checked.add(name)
            elif name not in local_checked:
                what = "value()" if kind == "use-value" else "dereference"
                findings.append(Finding(
                    fir.rel_path, fir.line_of(abs_start + offset),
                    self.name,
                    f"{what} on Result '{name}' is not dominated by an "
                    f"ok() check: no `if (!{name}.ok()) return ...`, "
                    f"PROCLUS_RETURN_IF_ERROR({name}.status()), or "
                    f"enclosing `if ({name}.ok())` guards this path, so "
                    "an error Status here aborts the process"))
                local_checked.add(name)  # report each name once per stmt
        # Guards established in a sequential statement dominate the rest
        # of the enclosing block.
        checked |= {n for _, k, n in events if k == "guard"}

    @staticmethod
    def _neg_ok_name(cond):
        m = re.search(r"!\s*([A-Za-z_]\w*)\s*\.\s*ok\s*\(\s*\)", cond)
        return m.group(1) if m else None

    @staticmethod
    def _pos_ok_name(cond):
        for m in re.finditer(r"(!?)\s*\b([A-Za-z_]\w*)\s*\.\s*ok\s*\(\s*\)",
                             cond):
            if not m.group(1):
                return m.group(2)
        return None

    @staticmethod
    def _terminates(stmts, code):
        """True if the branch always exits the enclosing flow: its last
        statement is return/break/continue or a noreturn macro."""
        if not stmts:
            return False
        last = stmts[-1]
        if last.kind == "return":
            return True
        if last.kind == "compound":
            return StatusFlow._terminates(last.body, code)
        text = code[last.start:last.end]
        return bool(re.match(
            r"\s*(break\b|continue\b|(?:std\s*::\s*)?(?:abort|exit|_Exit)\b"
            r"|PROCLUS_FATAL\b|FAIL\s*\()", text))


# ---------------------------------------------------------------------------
# Registry & suppression

ALL_RULES = (RngDrawInvariance(), FpAccumulationOrder(), ConsumerLifecycle(),
             LayerDag(), StatusFlow())
RULE_NAMES = tuple(r.name for r in ALL_RULES) + ("bare-allow",)


def check_file(fir, rules=None):
    """Runs `rules` (default: all) over one FileIR, applying
    analyzer:allow suppressions and reporting rationale-less allows."""
    findings = []
    for rule in rules or ALL_RULES:
        if not rule.applies_to(fir.rel_path):
            continue
        for finding in rule.check(fir):
            allows = find_allows(fir.lines, finding.line)
            if any(rule_name == finding.rule and rationale
                   for rule_name, rationale in allows):
                continue
            if any(rule_name == finding.rule and not rationale
                   for rule_name, rationale in allows):
                findings.append(Finding(
                    fir.rel_path, finding.line, "bare-allow",
                    f"analyzer:allow({finding.rule}) has no rationale; "
                    "write `// analyzer:allow("
                    f"{finding.rule}): <why this is safe>` — every "
                    "suppression in this tree must carry its "
                    "justification"))
                continue
            findings.append(finding)
    return findings
