"""AST-level determinism & architecture analyzer for the PROCLUS repo.

Where tools/lint.py is a regex linter (fast, but blind to control flow),
this package checks the invariants the repo's bit-identity story actually
rests on at the AST level:

  rng-draw-invariance    no Rng draw on a conditionally executed path
  fp-accumulation-order  no reassociation-prone floating-point reductions
                         outside the blessed kernel layer
  consumer-lifecycle     ScanConsumer subclasses honor the commit-on-Merge
                         contract (explicit Reset, block-keyed writes, no
                         retained scratch pointers)
  layer-dag              the include DAG common -> data -> distance/gen ->
                         core/clique/baselines -> eval/extensions
  status-flow            value()/deref on a Result only behind a
                         dominating ok() check

Two frontends produce the same normalized IR (see ir.py):

  clang     libclang Python bindings (pip install libclang==18.*); the
            frontend CI uses, pinned to the clang-tidy major.
  fallback  a pure-Python structural parser (microparse.py) covering the
            Google-style C++ subset this repo is written in, so the
            analyzer and its self-test run in trees without libclang
            (like this container). `--frontend clang` fails with an
            actionable error when the bindings are missing, mirroring the
            tidy/tsa presets.

Entry point: tools/analyzer/analyze.py (or `python3 tools/analyzer`).
"""
