// fixture-path: src/core/fixture_fp_ascending.cc
// The blessed shape: an explicit ascending loop with a named
// floating-point accumulator. Integer countdowns are also fine — only
// floating-point accumulation order is pinned.
double SumAscending(const double* x, int n) {
  double acc = 0.0;
  for (int i = 0; i < n; ++i) {
    acc += x[i];
  }
  return acc;
}

int CountDownInts(int n) {
  int total = 0;
  for (int i = n - 1; i >= 0; --i) {
    total += i;
  }
  return total;
}
