// fixture-path: src/distance/fixture_fp_descending.cc
// A floating-point accumulator built back-to-front: bit-different from
// the ascending golden order whenever the terms differ in magnitude.
double SumDescending(const double* x, int n) {
  double acc = 0.0;
  for (int i = n - 1; i >= 0; --i) {
    acc += x[i];  // expect: fp-accumulation-order
  }
  return acc;
}

double SumWhileDown(const double* x, int n) {
  double total = 0.0;
  while (n-- > 0) {
    total += x[n];  // expect: fp-accumulation-order
  }
  return total;
}
