// fixture-path: src/distance/batch.cc
// The blessed kernel layer is exempt: batch.{h,cc} owns the tiled
// accumulation order and the property tests pin it against the scalar
// reference, so reassociation-prone idioms are allowed here.
#include <numeric>

double TiledSum(const double* x, int n) {
  double acc = 0.0;
  for (int i = n - 1; i >= 0; --i) {
    acc += x[i];
  }
  return acc;
}
