// fixture-path: src/core/fixture_fp_accumulate.cc
// std::accumulate fixes left-fold order today but hides it from review,
// and std::reduce explicitly may reassociate — neither belongs outside
// the kernel layer.
#include <numeric>
#include <vector>

double SumAccumulate(const std::vector<double>& x) {
  return std::accumulate(x.begin(), x.end(), 0.0);  // expect: fp-accumulation-order
}

double SumReduce(const std::vector<double>& x) {
  return std::reduce(x.begin(), x.end(), 0.0);  // expect: fp-accumulation-order
}
