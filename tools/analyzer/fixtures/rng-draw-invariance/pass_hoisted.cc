// fixture-path: src/core/fixture_rng_hoisted.cc
// The draw happens unconditionally and only its USE is branched — the
// stream position is identical on every path. Loop-body draws are also
// fine: the rule checks draw-count invariance per path, and a loop's
// trip count is the caller's contract.
#include "src/common/rng.h"

double PickSpread(Rng& rng, bool wide) {
  const double spread = rng.Normal();
  double base = 1.0;
  if (wide) {
    base += spread;
  }
  for (int i = 0; i < 4; ++i) {
    base += rng.UniformDouble();
  }
  return base;
}
