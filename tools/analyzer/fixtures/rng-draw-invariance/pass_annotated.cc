// fixture-path: src/core/fixture_rng_annotated.cc
// Conditional draws annotated `// draws: invariant` with the argument
// for why every path consumes the same count are accepted; the
// annotation can sit on the branch header or on the draw line itself.
#include "src/common/rng.h"

double MaybeResample(Rng& rng, bool resample) {
  double x = 0.0;
  // draws: invariant — both arms consume exactly one draw each.
  if (resample) {
    x = rng.UniformDouble();
  } else {
    x = rng.Normal();
  }
  return x;
}

double InlineAnnotated(Rng& rng, bool heavy) {
  double y = 0.0;
  if (heavy) {
    y = rng.Exponential();  // draws: invariant — dead branch in tests only.
  } else {
    y = rng.Poisson();  // draws: invariant — dead branch in tests only.
  }
  return y;
}
