// fixture-path: src/sketch/fixture_sketch_conditional.cc
// A sketch-matrix construction that draws the sign only for non-first
// buckets: the private stream's position after the loop now depends on
// which buckets the earlier draws happened to pick, so two plans built
// for different row counts (same seed, same dims) would diverge — the
// draw-count-invariance contract the sketch layer is built on.
#include <cstdint>
#include <vector>

#include "src/common/rng.h"

void FillSketch(Rng& rng, size_t width, std::vector<uint32_t>& buckets,
                std::vector<double>& signs) {
  for (size_t j = 0; j < buckets.size(); ++j) {
    buckets[j] = static_cast<uint32_t>(rng.UniformInt(width));
    if (buckets[j] != 0) {
      signs[j] = rng.Bernoulli(0.5) ? 1.0 : -1.0;  // expect: rng-draw-invariance
    } else {
      signs[j] = 1.0;
    }
  }
}
