// fixture-path: src/sketch/fixture_sketch_plan.cc
// The shape of the real BuildSketchPlan: a private stream (derived seed,
// main run Rng untouched) consuming exactly two draws per dimension,
// unconditionally. The Bernoulli draw sits in the ternary CONDITION —
// it executes on every iteration; only the selected VALUE is branched,
// so the stream position after the loop depends only on (seed, dims).
#include <cstdint>
#include <vector>

#include "src/common/rng.h"

void FillSketch(uint64_t seed, size_t width, std::vector<uint32_t>& buckets,
                std::vector<double>& signs) {
  Rng rng(seed ^ 0x536b65746368ULL);
  // draws: invariant — two draws per dimension on every path.
  for (size_t j = 0; j < buckets.size(); ++j) {
    buckets[j] = static_cast<uint32_t>(rng.UniformInt(width));
    signs[j] = rng.Bernoulli(0.5) ? 1.0 : -1.0;
  }
}
