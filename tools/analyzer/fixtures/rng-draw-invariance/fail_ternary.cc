// fixture-path: src/core/fixture_rng_ternary.cc
// Expression-level conditionality: ternary arms and short-circuit RHS
// operands execute data-dependently even though the statement itself is
// unconditional.
#include "src/common/rng.h"

double Jitter(Rng& rng, bool fancy) {
  double x = fancy ? rng.Normal() : 0.0;  // expect: rng-draw-invariance
  bool keep = fancy && rng.Bernoulli(0.5);  // expect: rng-draw-invariance
  return keep ? x : 0.0;
}
