// fixture-path: src/core/fixture_rng_branch.cc
// A draw reached only when `wide` holds: the stream position after this
// function depends on the data, which desynchronizes the speculative
// dual-branch identity and checkpoint/resume.
#include "src/common/rng.h"

double PickSpread(Rng& rng, bool wide) {
  double base = rng.UniformDouble();
  if (wide) {
    base += rng.Normal();  // expect: rng-draw-invariance
  }
  return base;
}

int PickBucket(Rng& rng, int mode) {
  switch (mode) {
    case 0:
      return rng.UniformInt(0, 4);  // expect: rng-draw-invariance
    default:
      return 0;
  }
}
