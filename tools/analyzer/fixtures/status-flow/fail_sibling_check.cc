// fixture-path: src/core/fixture_sf_sibling.cc
// The case the retired regex rule got wrong: a textually earlier ok()
// in a SIBLING branch does not dominate the else path, and a check
// inside a loop body does not dominate statements after the loop (the
// body may run zero times).
#include "src/common/status.h"

void Dispatch(bool flag, const std::string& path) {
  Result<int> r = ParseHeader(path);
  if (flag) {
    ASSERT_TRUE(r.ok());
    Consume(r.value());
  } else {
    Consume(r.value());  // expect: status-flow
  }
}

int SumAll(const std::vector<std::string>& paths) {
  Result<int> last = ParseHeader(paths[0]);
  for (const auto& p : paths) {
    last = ParseHeader(p);
    PROCLUS_CHECK(last.ok());
  }
  return last.value();  // expect: status-flow
}
