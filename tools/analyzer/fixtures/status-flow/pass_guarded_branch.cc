// fixture-path: src/core/fixture_sf_branch.cc
// Branch-scoped guards: uses inside `if (r.ok())` are dominated; the
// same-expression `r.ok() && ...` prefix guards its own right-hand side;
// PROCLUS_CHECK(r.ok()) dominates the statements after it.
#include "src/common/status.h"

int CountRows(const std::string& path) {
  Result<Dataset> r = ReadBinary(path);
  if (r.ok()) {
    return static_cast<int>(r.value().rows());
  }
  return -1;
}

bool HasRows(const std::string& path) {
  Result<Dataset> r = ReadBinary(path);
  return r.ok() && r.value().rows() > 0;
}

int MustCountRows(const std::string& path) {
  Result<Dataset> r = ReadBinary(path);
  PROCLUS_CHECK(r.ok());
  return static_cast<int>(r->rows());
}
