// fixture-path: src/core/fixture_sf_allow.cc
// Suppression mechanics: an allow WITH a rationale silences the finding;
// a bare allow is itself reported, because every suppression in this
// tree must carry its justification.
#include "src/common/status.h"

void UseBoth(const std::string& path) {
  Result<int> r = ParseHeader(path);
  // analyzer:allow(status-flow): ParseHeader cannot fail on the embedded
  // header this test writes two lines up; an abort here IS the test.
  Consume(r.value());
  Consume(*r);  // analyzer:allow(status-flow)  // expect: bare-allow
}
