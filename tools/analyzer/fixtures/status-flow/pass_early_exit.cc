// fixture-path: src/core/fixture_sf_early.cc
// The two canonical guards: an early-exit `if (!r.ok()) return ...;`
// dominates everything after it, and PROCLUS_RETURN_IF_ERROR is the
// macro form of the same shape.
#include "src/common/status.h"

Status LoadAndUse(const std::string& path) {
  Result<Dataset> r = ReadBinary(path);
  if (!r.ok()) return r.status();
  Use(r.value());
  Use(r->rows());
  return OkStatus();
}

Status LoadAndUseMacro(const std::string& path) {
  Result<Dataset> d = ReadBinary(path);
  PROCLUS_RETURN_IF_ERROR(d.status());
  Use(std::move(d).value());
  return OkStatus();
}
