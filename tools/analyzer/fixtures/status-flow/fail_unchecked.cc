// fixture-path: src/core/fixture_sf_unchecked.cc
// No ok() check on any path before the access: an error Status here
// aborts the process inside value()/operator*.
#include "src/common/status.h"

Status LoadAndUse(const std::string& path) {
  Result<Dataset> r = ReadBinary(path);
  Use(r.value());  // expect: status-flow
  return OkStatus();
}

int FirstValue(const std::string& path) {
  Result<int> v = ParseHeader(path);
  return *v;  // expect: status-flow
}
