// fixture-path: src/core/fixture_consumer_declared.cc
// Reset() declared out-of-line still counts as an explicit
// acknowledgment; row-range-keyed writes are as legal as block-keyed
// ones, and local (non-member) state is never the rule's business.
#include "src/data/engine.h"

class RowHistConsumer : public ScanConsumer {
 public:
  void Prepare(std::size_t blocks, std::size_t dims) override;
  void ConsumeBlock(std::size_t block_index, std::size_t first_row,
                    std::span<const double> data,
                    std::size_t rows) override {
    double local_max = 0.0;
    for (std::size_t r = 0; r < rows; ++r) {
      if (data[r] > local_max) local_max = data[r];
      hist_[first_row + r] = data[r];
    }
    maxima_[block_index] = local_max;
  }
  void Merge() override;
  void Reset() override;

 private:
  std::vector<double> hist_;
  std::vector<double> maxima_;
};
