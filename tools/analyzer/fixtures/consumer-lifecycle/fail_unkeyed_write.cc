// fixture-path: src/core/fixture_consumer_racy.cc
// An unkeyed member write from ConsumeBlock: blocks run concurrently, so
// this races AND commits state outside Merge() — both halves of the
// commit-on-Merge contract broken in one line.
#include "src/data/engine.h"

class RacyConsumer : public ScanConsumer {
 public:
  void Prepare(std::size_t blocks, std::size_t dims) override {}
  void ConsumeBlock(std::size_t block_index, std::size_t first_row,
                    std::span<const double> data,
                    std::size_t rows) override {
    total_ += static_cast<double>(rows);  // expect: consumer-lifecycle
    blocks_seen_++;  // expect: consumer-lifecycle
  }
  void Merge() override {}
  void Reset() override { total_ = 0.0; }

 private:
  double total_ = 0.0;
  std::size_t blocks_seen_ = 0;
};
