// fixture-path: src/core/fixture_consumer_keyed.cc
// The contract in full: Reset() overridden, every ConsumeBlock write
// keyed by block_index (or a row range derived from first_row), and the
// only retained pointer into the block span lives in a per-block slot.
#include "src/data/engine.h"

class BlockSumConsumer : public ScanConsumer {
 public:
  void Prepare(std::size_t blocks, std::size_t dims) override {
    partial_.assign(blocks, 0.0);
    scratch_.assign(blocks, nullptr);
  }
  void ConsumeBlock(std::size_t block_index, std::size_t first_row,
                    std::span<const double> data,
                    std::size_t rows) override {
    double acc = 0.0;
    for (std::size_t r = 0; r < rows; ++r) acc += data[r];
    partial_[block_index] = acc;
    scratch_[block_index] = data.data();
  }
  void Merge() override {
    total_ = 0.0;
    for (double p : partial_) total_ += p;
  }
  void Reset() override {
    partial_.clear();
    scratch_.clear();
  }

 private:
  std::vector<double> partial_;
  std::vector<const double*> scratch_;
  double total_ = 0.0;
};
