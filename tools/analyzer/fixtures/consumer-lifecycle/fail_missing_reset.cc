// fixture-path: src/core/fixture_consumer_noreset.cc
// No Reset() anywhere in the class: the executor's fault-retry path has
// no rollback hook, so a failed attempt's partials leak into the retry.
#include "src/data/engine.h"

class LeakyConsumer : public ScanConsumer {  // expect: consumer-lifecycle
 public:
  void Prepare(std::size_t blocks, std::size_t dims) override {
    partial_.assign(blocks, 0.0);
  }
  void ConsumeBlock(std::size_t block_index, std::size_t first_row,
                    std::span<const double> data,
                    std::size_t rows) override {
    partial_[block_index] = static_cast<double>(rows);
  }
  void Merge() override {}

 private:
  std::vector<double> partial_;
};
