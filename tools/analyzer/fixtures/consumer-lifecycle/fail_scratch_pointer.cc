// fixture-path: src/core/fixture_consumer_dangle.cc
// A pointer into the block's scratch span stored in a slot NOT keyed by
// block_index: the span dies when this call returns, so the pointer
// dangles by the time Merge() reads it.
#include "src/data/engine.h"

class DanglingConsumer : public ScanConsumer {
 public:
  void Prepare(std::size_t blocks, std::size_t dims) override {}
  void ConsumeBlock(std::size_t block_index, std::size_t first_row,
                    std::span<const double> data,
                    std::size_t rows) override {
    views_[first_row] = data.data();  // expect: consumer-lifecycle
    first_ = &data[0];  // expect: consumer-lifecycle
  }
  void Merge() override {}
  void Reset() override { views_.clear(); }

 private:
  std::map<std::size_t, const double*> views_;
  const double* first_ = nullptr;
};
