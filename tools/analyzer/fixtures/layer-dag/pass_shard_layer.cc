// fixture-path: src/data/fixture_shard_sources.cc
// The shard layer lives in src/data (layer 1): it may include its own
// directory (sharded_source, engine, binary_io, point_source) and
// common (layer 0), and nothing above — exactly the shape of the real
// sharded_source.cc / engine.cc.
#include "common/run_stats.h"
#include "common/status.h"
#include "data/binary_io.h"
#include "data/engine.h"
#include "data/point_source.h"
#include "data/sharded_source.h"
