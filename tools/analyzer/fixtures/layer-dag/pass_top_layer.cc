// fixture-path: src/eval/fixture_dag_top.cc
// The top layer may include everything below it — including layer-3
// directories like core and baselines — just not its layer-4 sibling.
#include "src/baselines/kmeans.h"
#include "src/common/rng.h"
#include "src/core/proclus.h"
#include "src/data/engine.h"
