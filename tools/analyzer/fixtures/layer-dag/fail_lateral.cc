// fixture-path: src/clique/fixture_dag_lateral.cc
// clique and core both sit on layer 3: a lateral include is a
// cycle-in-waiting (nothing stops core from including clique back), so
// shared pieces must route through layer <= 2.
#include "src/common/rng.h"
#include "src/core/proclus.h"  // expect: layer-dag
