// fixture-path: src/core/fixture_sketch_down.cc
// Sketch sits between distance (2) and core (4): the consumers include
// the plan to project medoids and the batch kernels to run the screened
// scans — both strictly downward edges, exactly the shape of the real
// core/consumers.cc.
#include "src/common/rng.h"
#include "src/distance/batch.h"
#include "src/sketch/plan.h"
