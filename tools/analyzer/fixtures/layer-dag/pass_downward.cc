// fixture-path: src/core/fixture_dag_down.cc
// A layer-3 file including its own directory and strictly lower layers:
// exactly what the DAG permits. System includes are never edges.
#include <vector>

#include "src/common/status.h"
#include "src/core/proclus.h"
#include "src/data/engine.h"
#include "src/distance/metric.h"
