// fixture-path: src/distance/fixture_sketch_back.cc
// The screened kernels consume sketches, but distance (layer 2) must
// never include sketch (layer 3): the kernel layer sees projections only
// through the raw pointers/strides of SketchSpec, declared in its own
// header. Including the plan builder here inverts the DAG — sketch
// legitimately includes distance for the batch kernel declarations.
#include "src/common/matrix.h"
#include "src/sketch/plan.h"  // expect: layer-dag
