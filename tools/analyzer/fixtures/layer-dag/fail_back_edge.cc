// fixture-path: src/data/fixture_dag_back.cc
// Layer-1 data reaching up into layer-3 core and layer-2 distance: both
// are back-edges that invert the DAG and make a cycle once core
// includes data (which it legitimately does).
#include "src/common/status.h"
#include "src/core/proclus.h"  // expect: layer-dag
#include "src/distance/metric.h"  // expect: layer-dag
