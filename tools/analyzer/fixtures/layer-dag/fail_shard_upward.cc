// fixture-path: src/data/fixture_shard_upward.cc
// A shard-layer file reaching up for the consumer implementations (core,
// layer 3) or the distance kernels (layer 2): both are back-edges. The
// shard executor must see consumers only through the ScanConsumer
// interface declared in its own layer (data/engine.h).
#include "data/sharded_source.h"
#include "src/core/consumers.h"  // expect: layer-dag
#include "src/distance/batch.h"  // expect: layer-dag
