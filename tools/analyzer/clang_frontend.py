"""libclang frontend: lowers a real Clang AST into the shared IR.

This is the frontend CI runs (`pip install libclang==18.*`, pinned to the
same major as the clang-tidy preset). It is import-guarded: `available()`
reports whether the bindings can actually parse, and `missing_reason()`
explains what to install — the analyzer driver uses these to degrade to
the microparse frontend locally with a notice, mirroring how the tidy/tsa
presets degrade when their toolchains are absent.

The lowering keeps only what the rules consume — class definitions with
spelled base names, function/method definitions, and the statement tree —
with every node carrying offsets into the file's comment-stripped text so
rule code is frontend-agnostic.
"""

from ir import ClassIR, FileIR, FunctionIR, Node, extract_includes, \
    strip_comments_and_strings

_IMPORT_ERROR = None
try:
    from clang import cindex as _cindex
except ImportError as exc:  # pragma: no cover - exercised only sans clang
    _cindex = None
    _IMPORT_ERROR = str(exc)

_INDEX = None


def available():
    """True if the clang bindings import AND can locate libclang."""
    global _INDEX, _IMPORT_ERROR
    if _cindex is None:
        return False
    if _INDEX is not None:
        return True
    try:
        _INDEX = _cindex.Index.create()
        return True
    except Exception as exc:  # LibclangError: no libclang.so found
        _IMPORT_ERROR = str(exc)
        return False


def missing_reason():
    return (
        "libclang Python bindings unavailable"
        + (f" ({_IMPORT_ERROR})" if _IMPORT_ERROR else "")
        + ". Install with `pip install libclang==18.*` (pinned to the "
        "clang-tidy-18 preset), or run with `--frontend fallback`.")


_ARGS = ["-std=c++17", "-x", "c++", "-I", "."]


def parse_file(rel_path, text, repo_root="."):
    assert available(), missing_reason()
    ck = _cindex.CursorKind
    tu = _INDEX.parse(
        rel_path,
        args=_ARGS + ["-I", repo_root],
        unsaved_files=[(rel_path, text)],
        options=_cindex.TranslationUnit.PARSE_INCOMPLETE
        | _cindex.TranslationUnit.PARSE_SKIP_FUNCTION_BODIES * 0)

    code = strip_comments_and_strings(text)
    fir = FileIR(rel_path, text, code)
    fir.frontend = "clang"
    fir.includes = extract_includes(text)

    def off(loc):
        return loc.offset

    def in_main_file(cursor):
        f = cursor.location.file
        return f is not None and f.name == rel_path

    def lower_stmt(cursor):
        start, end = off(cursor.extent.start), off(cursor.extent.end)
        kids = list(cursor.get_children())
        if cursor.kind == ck.IF_STMT:
            node = Node("if", start, end)
            if kids:
                node.cond_start = off(kids[0].extent.start)
                node.cond_end = off(kids[0].extent.end)
            if len(kids) > 1:
                node.then_ = lower_body(kids[1])
            if len(kids) > 2:
                node.else_ = lower_body(kids[2])
            return node
        if cursor.kind in (ck.FOR_STMT, ck.WHILE_STMT, ck.DO_STMT,
                           ck.CXX_FOR_RANGE_STMT):
            node = Node("loop", start, end)
            node.loop_kind = {
                ck.FOR_STMT: "for",
                ck.WHILE_STMT: "while",
                ck.DO_STMT: "do",
                ck.CXX_FOR_RANGE_STMT: "range-for",
            }[cursor.kind]
            body = None
            for kid in kids:
                if kid.kind == ck.COMPOUND_STMT:
                    body = kid
            body = body if body is not None else (kids[-1] if kids else None)
            if body is not None:
                # Header = everything between the keyword and the body.
                node.cond_start = code.find("(", start) + 1
                node.cond_end = max(node.cond_start,
                                    off(body.extent.start) - 1)
                node.body = lower_body(body)
            return node
        if cursor.kind == ck.SWITCH_STMT:
            node = Node("switch", start, end)
            if kids:
                node.cond_start = off(kids[0].extent.start)
                node.cond_end = off(kids[0].extent.end)
            if len(kids) > 1:
                node.body = lower_body(kids[1])
            return node
        if cursor.kind == ck.RETURN_STMT:
            return Node("return", start, end)
        if cursor.kind == ck.COMPOUND_STMT:
            node = Node("compound", start, end)
            node.body = [lower_stmt(k) for k in kids]
            return node
        return Node("expr", start, end)

    def lower_body(cursor):
        if cursor.kind == ck.COMPOUND_STMT:
            return [lower_stmt(k) for k in cursor.get_children()]
        return [lower_stmt(cursor)]

    def lower_function(cursor, class_name):
        body = None
        params_end = None
        for kid in cursor.get_children():
            if kid.kind == ck.COMPOUND_STMT:
                body = kid
            elif kid.kind == ck.PARM_DECL:
                params_end = off(kid.extent.end)
        if body is None:
            return None
        start = off(cursor.extent.start)
        open_paren = code.find("(", start)
        params_close = code.find(")", params_end if params_end else
                                 open_paren)
        fn = FunctionIR(cursor.spelling, class_name, open_paren,
                        params_close + 1, off(body.extent.start),
                        off(body.extent.end))
        fn.body = lower_body(body)[0].body if \
            lower_body(body) and lower_body(body)[0].kind == "compound" \
            else lower_body(body)
        # lower_body on a COMPOUND_STMT already returns the child list.
        fn.body = [lower_stmt(k) for k in body.get_children()]
        return fn

    def visit(cursor, class_stack):
        for kid in cursor.get_children():
            if not in_main_file(kid):
                continue
            if kid.kind in (ck.CLASS_DECL, ck.STRUCT_DECL) and \
                    kid.is_definition():
                bases = []
                for base in kid.get_children():
                    if base.kind == ck.CXX_BASE_SPECIFIER:
                        name = base.type.spelling
                        name = name.split("<")[0].split("::")[-1].strip()
                        bases.append(name)
                cls = ClassIR(kid.spelling, bases,
                              off(kid.extent.start), off(kid.extent.end))
                fir.classes.append(cls)
                visit(kid, class_stack + [cls])
            elif kid.kind in (ck.CXX_METHOD, ck.FUNCTION_DECL,
                              ck.CONSTRUCTOR, ck.DESTRUCTOR,
                              ck.FUNCTION_TEMPLATE):
                owner = class_stack[-1] if class_stack else None
                fn = lower_function(kid, owner.name if owner else "")
                if fn is not None:
                    fir.functions.append(fn)
                    if owner is not None:
                        owner.methods.append(fn)
            elif kid.kind in (ck.NAMESPACE, ck.UNEXPOSED_DECL,
                              ck.LINKAGE_SPEC):
                visit(kid, class_stack)

    visit(tu.cursor, [])
    fir.functions.sort(key=lambda f: f.params_start)
    return fir
