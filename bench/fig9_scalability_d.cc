// Reproduces Figure 9 of the paper: PROCLUS running time versus the
// dimensionality d of the space, for d in {20, 25, 30, 35, 40, 45, 50}.
// N = 100,000 (scaled), 5 clusters each in a 5-dimensional subspace.
//
// Expected shape: linear growth in d (each iteration's dominant cost is
// the O(N*k*d) full-dimensional locality pass).

#include <cstdio>

#include "bench_util.h"
#include "common/timer.h"
#include "eval/report.h"

int main(int argc, char** argv) {
  using namespace proclus;
  using namespace proclus::bench;
  BenchOptions options = ParseOptions(argc, argv);

  PrintHeader("Figure 9: PROCLUS running time vs space dimensionality");
  if (!JsonOutput())
    std::printf("# N=%zu, k=5, clusters in 5-dim subspaces\n",
                options.Points());
  TableWriter table({"d", "proclus_sec", "sec_per_dim"});

  for (size_t d : {20, 25, 30, 35, 40, 45, 50}) {
    GeneratorParams gen;
    gen.num_points = options.Points();
    gen.space_dims = d;
    gen.num_clusters = 5;
    gen.cluster_dim_counts = {5, 5, 5, 5, 5};
    gen.outlier_fraction = 0.05;
    gen.seed = options.seed + d;
    auto data = GenerateSynthetic(gen);
    if (!data.ok()) return 1;

    double total = 0.0;
    for (size_t rep = 0; rep < options.repetitions; ++rep) {
      ProclusParams params = DefaultProclus(5, 5.0, options.seed + rep);
      params.num_restarts = 1;
      // Fix the hill-climb length so every sweep point does identical
      // work: timing then isolates the per-iteration cost the figure is
      // about, instead of data-dependent convergence noise.
      params.max_iterations = 60;
      params.max_no_improve = 60;
      Timer timer;
      auto result = RunProclus(data->dataset, params);
      total += timer.ElapsedSeconds();
      if (!result.ok()) return 1;
    }
    double seconds = total / static_cast<double>(options.repetitions);

    char d_buffer[16], s_buffer[32], per_buffer[32];
    std::snprintf(d_buffer, sizeof(d_buffer), "%zu", d);
    std::snprintf(s_buffer, sizeof(s_buffer), "%.3f", seconds);
    std::snprintf(per_buffer, sizeof(per_buffer), "%.5f",
                  seconds / static_cast<double>(d));
    table.AddRow({d_buffer, s_buffer, per_buffer});
  }
  PrintTable("fig9", table);
  FinishJson("fig9_scalability_d");
  return 0;
}
