// Limitation study (beyond the paper): PROCLUS assumes axis-parallel
// subspaces. This bench tilts the generated clusters out of their
// subspaces by increasing angles (half of each cluster's dimensions are
// rotated toward random noise dimensions) and measures how accuracy and
// dimension recovery degrade — the failure mode that motivated the
// arbitrarily-oriented follow-up work (ORCLUS, Aggarwal & Yu 2000).
//
// Expected shape: near-perfect recovery at 0 degrees (the paper's
// setting), graceful degradation through ~10 degrees, and substantial
// loss by 30-45 degrees where the correlation lives on diagonals no
// axis-parallel dimension subset can capture.

#include <cstdio>

#include "bench_util.h"
#include "eval/matching.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "extensions/orclus.h"

int main(int argc, char** argv) {
  using namespace proclus;
  using namespace proclus::bench;
  BenchOptions options = ParseOptions(argc, argv);
  BenchOptions scaled = options;
  if (scaled.scale == 1.0) scaled.scale = 0.2;

  PrintHeader("Limitation: accuracy vs subspace rotation angle");
  TableWriter table({"max_degrees", "proclus_acc", "proclus_ARI",
                     "dim_jaccard", "orclus_ARI"});

  for (double degrees : {0.0, 5.0, 10.0, 20.0, 30.0, 45.0}) {
    GeneratorParams gen = Case1Params(scaled);
    gen.cluster_dim_counts = {5, 5, 5, 5, 5};
    gen.rotation_max_degrees = degrees;
    // Isolate the orientation question: ORCLUS has no outlier handling,
    // so uniform outliers would confound the comparison.
    gen.outlier_fraction = 0.0;
    auto data = GenerateSynthetic(gen);
    if (!data.ok()) return 1;

    ProclusParams params = DefaultProclus(5, 5.0, options.algo_seed);
    HarnessRun run = RunProclusHarness(*data, params);
    DimensionRecovery recovery = ScoreDimensionRecovery(
        run.clustering.dimensions, data->truth.cluster_dims, run.match);

    // The oriented-subspace extension on the same input (defaults:
    // k0 = 15k seeds per the ORCLUS paper).
    OrclusParams oparams;
    oparams.num_clusters = 5;
    oparams.subspace_dims = 5;
    oparams.seed = options.algo_seed;
    auto orclus = RunOrclus(data->dataset, oparams);
    double orclus_ari =
        orclus.ok()
            ? AdjustedRandIndex(orclus->labels, data->truth.labels)
            : 0.0;

    char deg[16], acc[32], ari[32], jaccard[32], oari[32];
    std::snprintf(deg, sizeof(deg), "%.0f", degrees);
    std::snprintf(acc, sizeof(acc), "%.4f", MatchedAccuracy(run.confusion));
    std::snprintf(ari, sizeof(ari), "%.4f",
                  AdjustedRandIndex(run.clustering.labels,
                                    data->truth.labels));
    std::snprintf(jaccard, sizeof(jaccard), "%.4f", recovery.mean_jaccard);
    std::snprintf(oari, sizeof(oari), "%.4f", orclus_ari);
    table.AddRow({deg, acc, ari, jaccard, oari});
  }
  PrintTable("rotation", table);
  if (!JsonOutput())
    std::printf("\nAxis-parallel projected clustering weakens as structure "
                "tilts off-axis;\nthe ORCLUS extension (oriented "
                "subspaces) closes the gap.\n");
  FinishJson("limitation_rotation");
  return 0;
}
