// Kernel A/B harness: scalar vs batched distance kernels.
//
// Times the per-point scalar kernels (distance/segmental.h,
// distance/metric.h) against the block-batched kernels (distance/batch.h)
// on a block-partitioned input, driving them exactly as the scan
// consumers do: one KernelScratch reused across blocks of
// kDefaultBlockRows. Three kernels are measured at d in {20, 100}:
//
//   segmental   - k-medoid argmin assignment on per-medoid dimension
//                 lists (the PROCLUS assignment hot path)
//   manhattan   - full-dimensional Manhattan distances to k reference
//                 points sharing one tile (the locality-statistics path)
//   sqeuclidean - full-dimensional squared Euclidean argmin (the Lloyd
//                 assignment step)
//
// Every batched output is checked bit-identical to its scalar reference
// on every run. --smoke additionally asserts the batched path is at
// least as fast as the scalar path for each configuration and exits
// nonzero otherwise — wired into ctest (label bench_smoke) so a
// vectorization regression cannot land silently.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/matrix.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/timer.h"
#include "distance/batch.h"
#include "distance/metric.h"
#include "distance/segmental.h"

namespace {

using namespace proclus;
using namespace proclus::bench;

constexpr size_t kMedoids = 5;
constexpr size_t kSubspaceDims = 7;

struct Input {
  size_t n = 0;
  size_t d = 0;
  std::vector<double> data;                    // n x d row-major
  Matrix medoids;                              // kMedoids x d
  std::vector<std::vector<uint32_t>> dim_lists;  // kMedoids lists
};

Input MakeInput(size_t n, size_t d, uint64_t seed) {
  Input input;
  input.n = n;
  input.d = d;
  Rng rng(seed);
  input.data.resize(n * d);
  for (double& v : input.data) v = rng.Uniform(0, 100);
  input.medoids = Matrix(kMedoids, d);
  for (size_t i = 0; i < kMedoids; ++i)
    for (size_t j = 0; j < d; ++j) input.medoids(i, j) = rng.Uniform(0, 100);
  // Distinct ascending per-medoid dimension lists (stride keeps them
  // within [0, d) without wrapping for the d used here).
  const uint32_t stride = static_cast<uint32_t>(d / kSubspaceDims);
  input.dim_lists.resize(kMedoids);
  for (size_t i = 0; i < kMedoids; ++i)
    for (uint32_t j = 0; j < kSubspaceDims; ++j)
      input.dim_lists[i].push_back(static_cast<uint32_t>(i) + j * stride);
  return input;
}

// Calls `pass` `reps` times and returns the fastest wall time.
template <typename Fn>
double BestOf(size_t reps, Fn pass) {
  double best = std::numeric_limits<double>::infinity();
  for (size_t rep = 0; rep < reps; ++rep) {
    Timer timer;
    pass();
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best;
}

// Visits the input in scan-sized blocks, like ScanExecutor does.
template <typename Fn>
void VisitBlocks(const Input& input, Fn fn) {
  for (size_t first = 0; first < input.n; first += kDefaultBlockRows) {
    const size_t rows = std::min(kDefaultBlockRows, input.n - first);
    fn(first, std::span<const double>(input.data.data() + first * input.d,
                                      rows * input.d),
       rows);
  }
}

struct KernelResult {
  double scalar_seconds = 0.0;
  double batch_seconds = 0.0;
  bool identical = false;
};

KernelResult BenchSegmental(const Input& input, size_t reps) {
  const size_t d = input.d;
  std::vector<int> labels_scalar(input.n), labels_batch(input.n);
  std::vector<double> best_scalar(input.n), best_batch(input.n);
  KernelScratch scratch;
  KernelResult result;
  result.scalar_seconds = BestOf(reps, [&] {
    VisitBlocks(input, [&](size_t first, std::span<const double> block,
                            size_t rows) {
      for (size_t r = 0; r < rows; ++r) {
        std::span<const double> point = block.subspan(r * d, d);
        double best = std::numeric_limits<double>::infinity();
        int best_i = 0;
        for (size_t i = 0; i < kMedoids; ++i) {
          double dist = ManhattanSegmentalDistance(point, input.medoids.row(i),
                                                   input.dim_lists[i]);
          if (dist < best) {
            best = dist;
            best_i = static_cast<int>(i);
          }
        }
        labels_scalar[first + r] = best_i;
        best_scalar[first + r] = best;
      }
    });
  });
  result.batch_seconds = BestOf(reps, [&] {
    VisitBlocks(input, [&](size_t first, std::span<const double> block,
                            size_t rows) {
      SegmentalArgminBatch(block, rows, d, input.medoids, input.dim_lists,
                           /*normalize=*/true, /*spheres=*/{}, scratch,
                           labels_batch.data() + first);
      std::copy(scratch.best.begin(), scratch.best.begin() + rows,
                best_batch.begin() + first);
    });
  });
  result.identical =
      labels_scalar == labels_batch && best_scalar == best_batch;
  return result;
}

KernelResult BenchManhattan(const Input& input, size_t reps) {
  const size_t d = input.d;
  std::vector<double> out_scalar(kMedoids * input.n);
  std::vector<double> out_batch(kMedoids * input.n);
  KernelScratch scratch;
  KernelResult result;
  result.scalar_seconds = BestOf(reps, [&] {
    VisitBlocks(input, [&](size_t first, std::span<const double> block,
                            size_t rows) {
      for (size_t r = 0; r < rows; ++r) {
        std::span<const double> point = block.subspan(r * d, d);
        for (size_t m = 0; m < kMedoids; ++m)
          out_scalar[m * input.n + first + r] =
              ManhattanDistance(point, input.medoids.row(m));
      }
    });
  });
  // The batched path mirrors LocalityStatsConsumer: one many-reference
  // call per block writing an [medoid x row] panel, then a copy into the
  // row-major comparison layout (charged to the batched time).
  std::vector<double> panel(kMedoids * kDefaultBlockRows);
  result.batch_seconds = BestOf(reps, [&] {
    VisitBlocks(input, [&](size_t first, std::span<const double> block,
                            size_t rows) {
      ManhattanManyBatch(block, rows, d, input.medoids, scratch,
                         panel.data());
      for (size_t m = 0; m < kMedoids; ++m)
        std::copy(panel.begin() + m * rows, panel.begin() + (m + 1) * rows,
                  out_batch.begin() + m * input.n + first);
    });
  });
  result.identical = out_scalar == out_batch;
  return result;
}

KernelResult BenchSquaredEuclidean(const Input& input, size_t reps) {
  const size_t d = input.d;
  std::vector<std::vector<double>> centers(kMedoids);
  for (size_t m = 0; m < kMedoids; ++m) {
    auto row = input.medoids.row(m);
    centers[m].assign(row.begin(), row.end());
  }
  std::vector<int> labels_scalar(input.n), labels_batch(input.n);
  std::vector<double> best_scalar(input.n), best_batch(input.n);
  KernelScratch scratch;
  KernelResult result;
  result.scalar_seconds = BestOf(reps, [&] {
    VisitBlocks(input, [&](size_t first, std::span<const double> block,
                            size_t rows) {
      for (size_t r = 0; r < rows; ++r) {
        std::span<const double> point = block.subspan(r * d, d);
        double best = std::numeric_limits<double>::infinity();
        int best_i = 0;
        for (size_t c = 0; c < kMedoids; ++c) {
          double d2 = SquaredEuclideanDistance(point, centers[c]);
          if (d2 < best) {
            best = d2;
            best_i = static_cast<int>(c);
          }
        }
        labels_scalar[first + r] = best_i;
        best_scalar[first + r] = best;
      }
    });
  });
  result.batch_seconds = BestOf(reps, [&] {
    VisitBlocks(input, [&](size_t first, std::span<const double> block,
                            size_t rows) {
      SquaredEuclideanArgminBatch(block, rows, d, centers, scratch,
                                  labels_batch.data() + first);
      std::copy(scratch.best.begin(), scratch.best.begin() + rows,
                best_batch.begin() + first);
    });
  });
  result.identical =
      labels_scalar == labels_batch && best_scalar == best_batch;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions options = ParseOptions(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;

  const size_t n = options.Points(100000);
  const size_t reps = options.repetitions < 3 ? 3 : options.repetitions;
  bool ok = true;

  struct Config {
    const char* kernel;
    size_t d;
    KernelResult (*run)(const Input&, size_t);
  };
  const Config configs[] = {
      {"segmental", 20, BenchSegmental},
      {"segmental", 100, BenchSegmental},
      {"manhattan", 20, BenchManhattan},
      {"manhattan", 100, BenchManhattan},
      {"sqeuclidean", 20, BenchSquaredEuclidean},
      {"sqeuclidean", 100, BenchSquaredEuclidean},
  };
  for (const Config& config : configs) {
    Input input = MakeInput(n, config.d, options.seed);
    KernelResult result = config.run(input, reps);
    const double pairs =
        static_cast<double>(n) * static_cast<double>(kMedoids);
    const std::string name =
        std::string(config.kernel) + " d=" + std::to_string(config.d);
    PrintHeader(name);
    PrintKV("rows", static_cast<double>(n));
    PrintKV("scalar Mpairs/s", pairs / result.scalar_seconds / 1e6);
    PrintKV("batched Mpairs/s", pairs / result.batch_seconds / 1e6);
    PrintKV("speedup", result.scalar_seconds / result.batch_seconds);
    PrintKV("bit identical", result.identical ? "yes" : "no");
    if (!result.identical) {
      std::fprintf(stderr, "FAIL %s: batched != scalar\n", name.c_str());
      ok = false;
    }
    if (smoke && result.batch_seconds > result.scalar_seconds) {
      std::fprintf(stderr,
                   "FAIL %s: batched slower than scalar (%.4fs vs %.4fs)\n",
                   name.c_str(), result.batch_seconds,
                   result.scalar_seconds);
      ok = false;
    }
  }

  FinishJson("kernels");
  return ok ? 0 : 1;
}
