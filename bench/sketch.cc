// Sketch-screen A/B harness: what exact-result candidate pruning buys.
//
// Runs PROCLUS twice on the same input — ProclusParams::sketch off (every
// argmin/threshold comparison pays the full-dimensional kernel) and on
// (the random-projection / prefix screens discard provably-losing
// candidates and only survivors reach the exact kernels) — at
// d in {20, 100, 500} over both an in-memory source and a disk snapshot.
// Reports wall time, the on/off speedup, and the screen counters
// (rows screened / pruned / exact verifications, prune rate). The two
// paths are bit-identical by construction; this harness verifies that on
// every run.
//
// --smoke asserts, for every (d, source) cell: the screened clustering is
// bit-identical to the unscreened one, the screen counters balance
// (screened == pruned + verifications) with screened > 0, and at least
// one cell pruned at least one candidate — so a bounds regression that
// silently stops pruning (or worse, changes bits) fails CI. Wired into
// ctest under the bench_smoke label. Timing is reported but never
// asserted: on the single-core CI container the on/off ratio is noisy at
// --quick scale; the committed BENCH_sketch.json records the measured
// ratios honestly.

#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "data/binary_io.h"
#include "data/point_source.h"
#include "sketch/plan.h"

namespace {

using namespace proclus;
using namespace proclus::bench;

struct SketchRun {
  ProjectedClustering clustering;
  double seconds = 0.0;
};

SketchRun RunOnce(const PointSource& source, const ProclusParams& params,
                  size_t reps) {
  SketchRun run;
  run.seconds = std::numeric_limits<double>::infinity();
  for (size_t rep = 0; rep < reps; ++rep) {
    Timer timer;
    auto result = RunProclusOnSource(source, params);
    double seconds = timer.ElapsedSeconds();
    if (!result.ok()) {
      std::fprintf(stderr, "PROCLUS failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    run.seconds = std::min(run.seconds, seconds);
    run.clustering = std::move(result).value();
  }
  return run;
}

bool SameClustering(const ProjectedClustering& a,
                    const ProjectedClustering& b) {
  return a.labels == b.labels && a.medoids == b.medoids &&
         a.objective == b.objective && a.iterations == b.iterations &&
         a.improvements == b.improvements;
}

// One high-dimensional Case-1-style input: k clusters in 7-dimensional
// subspaces of a d-dimensional space, 5% outliers. paper_n scales down
// with d so the full grid stays tractable at d=500.
GeneratorParams MakeInput(const BenchOptions& options, size_t d,
                          size_t paper_n) {
  GeneratorParams gen = Case1Params(options);
  gen.space_dims = d;
  gen.num_points = options.Points(paper_n);
  return gen;
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions options = ParseOptions(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;

  const size_t reps = options.repetitions;
  bool ok = true;
  uint64_t total_pruned = 0;

  struct Config {
    size_t d;
    size_t paper_n;
  };
  // N shrinks as d grows so every cell finishes in seconds at --quick;
  // the full-scale run keeps N * d roughly constant across rows.
  const Config configs[] = {{20, 50000}, {100, 10000}, {500, 2000}};

  for (const Config& config : configs) {
    GeneratorParams gen = MakeInput(options, config.d, config.paper_n);
    auto data = GenerateSynthetic(gen);
    if (!data.ok()) {
      std::fprintf(stderr, "generator failed: %s\n",
                   data.status().ToString().c_str());
      return 1;
    }

    const std::string disk_path = "/tmp/proclus_sketch_" +
                                  std::to_string(::getpid()) + "_" +
                                  std::to_string(config.d) + ".bin";
    Status written = WriteBinaryFile(data->dataset, disk_path);
    if (!written.ok()) {
      std::fprintf(stderr, "snapshot write failed: %s\n",
                   written.ToString().c_str());
      return 1;
    }
    auto disk = DiskSource::Open(disk_path);
    if (!disk.ok()) {
      std::fprintf(stderr, "snapshot open failed: %s\n",
                   disk.status().ToString().c_str());
      return 1;
    }
    MemorySource memory(data->dataset);

    ProclusParams params = DefaultProclus(gen.num_clusters, 7.0,
                                          options.algo_seed);
    // Fixed climb length: both arms of the A/B do identical work, and the
    // run is long enough that iteration scans dominate initialization.
    params.num_restarts = 2;
    params.max_iterations = 30;
    params.max_no_improve = 30;

    const size_t rows = data->dataset.size();
    const size_t width = SketchWidth(rows, config.d);
    const PointSource* sources[] = {&memory, &*disk};
    const char* source_names[] = {"memory", "disk"};
    for (size_t s = 0; s < 2; ++s) {
      const std::string name = "d=" + std::to_string(config.d) + " " +
                               source_names[s];
      params.sketch = false;
      SketchRun off = RunOnce(*sources[s], params, reps);
      params.sketch = true;
      SketchRun on = RunOnce(*sources[s], params, reps);

      const RunStats& stats = on.clustering.stats;
      PrintHeader(name);
      PrintKV("rows", static_cast<double>(rows));
      PrintKV("sketch width", static_cast<double>(width));
      PrintKV("off seconds", off.seconds);
      PrintKV("on seconds", on.seconds);
      PrintKV("speedup", off.seconds / on.seconds);
      PrintKV("rows screened", static_cast<double>(stats.sketch_rows_screened));
      PrintKV("rows pruned", static_cast<double>(stats.sketch_rows_pruned));
      PrintKV("exact verifications",
              static_cast<double>(stats.sketch_exact_verifications));
      PrintKV("prune rate",
              stats.sketch_rows_screened == 0
                  ? 0.0
                  : static_cast<double>(stats.sketch_rows_pruned) /
                        static_cast<double>(stats.sketch_rows_screened));
      const bool identical = SameClustering(off.clustering, on.clustering);
      PrintKV("bit identical", identical ? "yes" : "no");
      total_pruned += stats.sketch_rows_pruned;

      if (!identical) {
        std::fprintf(stderr, "FAIL %s: sketch on != sketch off\n",
                     name.c_str());
        ok = false;
      }
      if (smoke) {
        if (stats.sketch_rows_screened == 0) {
          std::fprintf(stderr, "FAIL %s: no candidates screened\n",
                       name.c_str());
          ok = false;
        }
        if (stats.sketch_rows_screened !=
            stats.sketch_rows_pruned + stats.sketch_exact_verifications) {
          std::fprintf(stderr,
                       "FAIL %s: counter imbalance (%" PRIu64 " screened != "
                       "%" PRIu64 " pruned + %" PRIu64 " verified)\n",
                       name.c_str(), stats.sketch_rows_screened,
                       stats.sketch_rows_pruned,
                       stats.sketch_exact_verifications);
          ok = false;
        }
        if (off.clustering.stats.sketch_rows_screened != 0) {
          std::fprintf(stderr, "FAIL %s: sketch-off run screened rows\n",
                       name.c_str());
          ok = false;
        }
      }
    }
    std::remove(disk_path.c_str());
  }

  if (smoke && total_pruned == 0) {
    std::fprintf(stderr, "FAIL: no configuration pruned any candidate\n");
    ok = false;
  }

  FinishJson("sketch");
  return ok ? 0 : 1;
}
