// Reproduces Table 1 of the paper: dimensions of the input clusters versus
// the output clusters on a Case 1 file (all five clusters generated in
// 7-dimensional subspaces of a 20-dimensional space, N = 100,000, 5%
// outliers; PROCLUS run with k = 5, l = 7).
//
// Expected shape: a one-to-one correspondence between output and input
// clusters with identical dimension sets (the paper reports a perfect
// match) and cluster sizes close to the generated ones.

#include "table_common.h"

int main(int argc, char** argv) {
  using namespace proclus::bench;
  BenchOptions options = ParseOptions(argc, argv);
  int rc = RunTableExperiment(
      "Table 1: input vs output cluster dimensions (Case 1, l = 7)",
      Case1Params(options), /*avg_dims=*/7.0, options,
      TableKind::kDimensions);
  FinishJson("table1_dimensions_case1");
  return rc;
}
