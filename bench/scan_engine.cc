// Scan-engine A/B harness: measures what the fused scan executor buys.
//
// Runs PROCLUS twice on the same input — fuse_scans on (2 scans per
// hill-climbing iteration + 1 locality bootstrap per restart) and off
// (the classic 4-scans-per-iteration loop) — over both an in-memory
// source and a disk snapshot, and reports scans issued, rows visited,
// bytes read, and wall time. The two engines are bit-identical by
// construction; this harness verifies that on every run.
//
// --smoke additionally asserts the documented scan budget
// (DESIGN.md "Scan executor"):
//   fused:    iterative_scans == 2 * iterations,
//             bootstrap_scans == num_restarts, refine_scans == 3
//   classic:  iterative_scans == 4 * iterations, refine_scans == 4
// and exits nonzero on any violation — wired into ctest as the
// bench_smoke label so the budget cannot silently regress.

#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_util.h"
#include "common/timer.h"
#include "data/binary_io.h"
#include "data/point_source.h"

namespace {

using namespace proclus;
using namespace proclus::bench;

struct EngineRun {
  ProjectedClustering clustering;
  double seconds = 0.0;
};

EngineRun RunOnce(const PointSource& source, const ProclusParams& params) {
  Timer timer;
  auto result = RunProclusOnSource(source, params);
  double seconds = timer.ElapsedSeconds();
  if (!result.ok()) {
    std::fprintf(stderr, "PROCLUS failed: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return EngineRun{std::move(result).value(), seconds};
}

bool SameClustering(const ProjectedClustering& a,
                    const ProjectedClustering& b) {
  return a.labels == b.labels && a.medoids == b.medoids &&
         a.objective == b.objective && a.iterations == b.iterations &&
         a.improvements == b.improvements;
}

void ReportRun(const std::string& name, const EngineRun& run) {
  PrintKV(name + " seconds", run.seconds);
  PrintKV(name + " iterations",
          static_cast<double>(run.clustering.iterations));
  PrintKV(name + " objective", run.clustering.objective);
  PrintRunStats(name, run.clustering.stats);
}

bool CheckBudget(const std::string& name, const EngineRun& run,
                 const ProclusParams& params) {
  const RunStats& stats = run.clustering.stats;
  const uint64_t iterations = run.clustering.iterations;
  bool ok = true;
  auto expect = [&](const char* what, uint64_t got, uint64_t want) {
    if (got != want) {
      std::fprintf(stderr, "FAIL %s: %s = %" PRIu64 ", expected %" PRIu64 "\n",
                   name.c_str(), what, got, want);
      ok = false;
    }
  };
  if (params.fuse_scans) {
    expect("iterative_scans", stats.iterative_scans, 2 * iterations);
    expect("bootstrap_scans", stats.bootstrap_scans, params.num_restarts);
    expect("refine_scans", stats.refine_scans, 3);
  } else {
    expect("iterative_scans", stats.iterative_scans, 4 * iterations);
    expect("bootstrap_scans", stats.bootstrap_scans, 0);
    expect("refine_scans", stats.refine_scans, 4);
  }
  expect("scans_issued",
         stats.scans_issued,
         stats.init_scans + stats.bootstrap_scans + stats.iterative_scans +
             stats.refine_scans);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions options = ParseOptions(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;

  // A mid-size Case-1-style input: big enough to span many scan blocks,
  // small enough that the full fused/classic x memory/disk grid stays
  // fast.
  GeneratorParams gen = Case1Params(options);
  gen.num_points = options.Points(50000);
  auto data = GenerateSynthetic(gen);
  if (!data.ok()) {
    std::fprintf(stderr, "generator failed: %s\n",
                 data.status().ToString().c_str());
    return 1;
  }

  ProclusParams params = DefaultProclus(5, 7.0, options.algo_seed);
  // Fix the climb length so the scan counts of a run are reproducible
  // and the A/B comparison does identical work on both engines.
  params.num_restarts = 2;
  params.max_iterations = 30;
  params.max_no_improve = 30;

  const std::string disk_path = "/tmp/proclus_scan_engine_" +
                                std::to_string(::getpid()) + ".bin";
  Status written = WriteBinaryFile(data->dataset, disk_path);
  if (!written.ok()) {
    std::fprintf(stderr, "snapshot write failed: %s\n",
                 written.ToString().c_str());
    return 1;
  }
  auto disk = DiskSource::Open(disk_path);
  if (!disk.ok()) {
    std::fprintf(stderr, "snapshot open failed: %s\n",
                 disk.status().ToString().c_str());
    return 1;
  }
  MemorySource memory(data->dataset);

  PrintHeader("Scan engine: fused vs classic");
  PrintKV("N", static_cast<double>(gen.num_points));
  PrintKV("d", static_cast<double>(gen.space_dims));
  PrintKV("k", static_cast<double>(gen.num_clusters));
  PrintKV("restarts", static_cast<double>(params.num_restarts));
  PrintKV("max iterations", static_cast<double>(params.max_iterations));

  params.fuse_scans = true;
  EngineRun fused_mem = RunOnce(memory, params);
  EngineRun fused_disk = RunOnce(*disk, params);
  params.fuse_scans = false;
  EngineRun classic_mem = RunOnce(memory, params);
  EngineRun classic_disk = RunOnce(*disk, params);

  ReportRun("fused/memory", fused_mem);
  ReportRun("fused/disk", fused_disk);
  ReportRun("classic/memory", classic_mem);
  ReportRun("classic/disk", classic_disk);
  PrintKV("scan reduction (iterative)",
          static_cast<double>(classic_mem.clustering.stats.iterative_scans) /
              static_cast<double>(
                  fused_mem.clustering.stats.iterative_scans +
                  fused_mem.clustering.stats.bootstrap_scans));
  PrintKV("bytes reduction (disk)",
          static_cast<double>(classic_disk.clustering.stats.bytes_read) /
              static_cast<double>(fused_disk.clustering.stats.bytes_read));

  bool ok = true;
  if (!SameClustering(fused_mem.clustering, classic_mem.clustering)) {
    std::fprintf(stderr, "FAIL: fused and classic engines disagree\n");
    ok = false;
  }
  if (!SameClustering(fused_mem.clustering, fused_disk.clustering)) {
    std::fprintf(stderr, "FAIL: memory and disk sources disagree\n");
    ok = false;
  }
  if (smoke) {
    params.fuse_scans = true;
    ok = CheckBudget("fused/memory", fused_mem, params) && ok;
    ok = CheckBudget("fused/disk", fused_disk, params) && ok;
    params.fuse_scans = false;
    ok = CheckBudget("classic/memory", classic_mem, params) && ok;
    ok = CheckBudget("classic/disk", classic_disk, params) && ok;
  }
  PrintKV("engines bit-identical", ok ? "yes" : "NO");
  FinishJson("scan_engine");
  std::remove(disk_path.c_str());
  if (!ok) return 1;
  return 0;
}
