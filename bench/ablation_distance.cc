// Ablation: Manhattan segmental distance (normalized by |D|) versus the
// unnormalized restricted Manhattan distance during point assignment. The
// normalization is what makes clusters with different dimension-set sizes
// comparable (Section 1.2); on Case 2 files (cluster dims 2..7) removing
// it biases assignment toward low-dimensional clusters.

#include <cstdio>

#include "bench_util.h"
#include "eval/matching.h"
#include "eval/metrics.h"
#include "eval/report.h"

int main(int argc, char** argv) {
  using namespace proclus;
  using namespace proclus::bench;
  BenchOptions options = ParseOptions(argc, argv);
  BenchOptions scaled = options;
  if (scaled.scale == 1.0) scaled.scale = 0.2;
  GeneratorParams gen = Case2Params(scaled);
  auto data = GenerateSynthetic(gen);
  if (!data.ok()) return 1;

  PrintHeader("Ablation: segmental normalization vs raw restricted L1");
  PrintKV("N", static_cast<double>(gen.num_points));
  TableWriter table({"distance", "seed", "matched_acc", "ARI"});

  for (bool normalized : {true, false}) {
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      ProclusParams params = DefaultProclus(5, 4.0, seed);
      params.segmental_normalization = normalized;
      HarnessRun run = RunProclusHarness(*data, params);
      char acc_buffer[32], ari_buffer[32];
      std::snprintf(acc_buffer, sizeof(acc_buffer), "%.4f",
                    MatchedAccuracy(run.confusion));
      std::snprintf(ari_buffer, sizeof(ari_buffer), "%.4f",
                    AdjustedRandIndex(run.clustering.labels,
                                      data->truth.labels));
      table.AddRow({normalized ? "segmental" : "raw-L1",
                    std::to_string(seed), acc_buffer, ari_buffer});
    }
  }
  PrintTable("distance", table);
  FinishJson("ablation_distance");
  return 0;
}
