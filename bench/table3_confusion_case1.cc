// Reproduces Table 3 of the paper: the confusion matrix between output and
// input clusters on the Case 1 file (same run configuration as Table 1).
//
// Expected shape: each output row dominated by a single input cluster,
// a small number of generated outliers absorbed into clusters (they were
// placed uniformly, so some land inside cluster regions), and a sizable
// outlier row.

#include "table_common.h"

int main(int argc, char** argv) {
  using namespace proclus::bench;
  BenchOptions options = ParseOptions(argc, argv);
  int rc = RunTableExperiment(
      "Table 3: confusion matrix (Case 1, l = 7)", Case1Params(options),
      /*avg_dims=*/7.0, options, TableKind::kConfusion);
  FinishJson("table3_confusion_case1");
  return rc;
}
