// Google-benchmark microbenchmarks of the library's hot kernels: distance
// functions, segmental distance, the synthetic generator, greedy medoid
// selection, locality statistics, point assignment, and CLIQUE dense-unit
// mining.

#include <benchmark/benchmark.h>

#include "clique/dense_units.h"
#include "clique/grid.h"
#include "common/eigen.h"
#include "common/rng.h"
#include "core/assign.h"
#include "core/classify.h"
#include "core/find_dimensions.h"
#include "core/greedy.h"
#include "core/proclus.h"
#include "distance/metric.h"
#include "distance/segmental.h"
#include "extensions/orclus.h"
#include "gen/synthetic.h"

namespace proclus {
namespace {

std::vector<double> RandomPoint(size_t dims, Rng& rng) {
  std::vector<double> p(dims);
  for (double& v : p) v = rng.Uniform(0, 100);
  return p;
}

void BM_ManhattanDistance(benchmark::State& state) {
  Rng rng(1);
  const size_t d = static_cast<size_t>(state.range(0));
  auto a = RandomPoint(d, rng), b = RandomPoint(d, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ManhattanDistance(a, b));
  }
  state.SetItemsProcessed(state.iterations() * d);
}
BENCHMARK(BM_ManhattanDistance)->Arg(20)->Arg(100)->Arg(1000);

void BM_EuclideanDistance(benchmark::State& state) {
  Rng rng(2);
  const size_t d = static_cast<size_t>(state.range(0));
  auto a = RandomPoint(d, rng), b = RandomPoint(d, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EuclideanDistance(a, b));
  }
  state.SetItemsProcessed(state.iterations() * d);
}
BENCHMARK(BM_EuclideanDistance)->Arg(20)->Arg(100);

void BM_SegmentalDistance(benchmark::State& state) {
  Rng rng(3);
  const size_t d = 50;
  const size_t subset = static_cast<size_t>(state.range(0));
  auto a = RandomPoint(d, rng), b = RandomPoint(d, rng);
  std::vector<uint32_t> dims;
  for (size_t i = 0; i < subset; ++i)
    dims.push_back(static_cast<uint32_t>(i * (d / subset)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ManhattanSegmentalDistance(a, b, dims));
  }
  state.SetItemsProcessed(state.iterations() * subset);
}
BENCHMARK(BM_SegmentalDistance)->Arg(2)->Arg(7)->Arg(25);

void BM_SyntheticGenerator(benchmark::State& state) {
  GeneratorParams params;
  params.num_points = static_cast<size_t>(state.range(0));
  params.space_dims = 20;
  params.num_clusters = 5;
  params.poisson_mean = 5.0;
  params.seed = 5;
  for (auto _ : state) {
    auto result = GenerateSynthetic(params);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * params.num_points);
}
BENCHMARK(BM_SyntheticGenerator)->Arg(10000)->Arg(100000);

void BM_GreedyPick(benchmark::State& state) {
  GeneratorParams gen;
  gen.num_points = 2000;
  gen.space_dims = 20;
  gen.num_clusters = 5;
  gen.poisson_mean = 5.0;
  gen.seed = 7;
  auto data = GenerateSynthetic(gen);
  std::vector<size_t> candidates(data->dataset.size());
  for (size_t i = 0; i < candidates.size(); ++i) candidates[i] = i;
  for (auto _ : state) {
    Rng rng(11);
    benchmark::DoNotOptimize(GreedyPick(data->dataset, candidates,
                                        static_cast<size_t>(state.range(0)),
                                        MetricKind::kManhattan, rng));
  }
}
BENCHMARK(BM_GreedyPick)->Arg(10)->Arg(50);

void BM_LocalityStats(benchmark::State& state) {
  GeneratorParams gen;
  gen.num_points = static_cast<size_t>(state.range(0));
  gen.space_dims = 20;
  gen.num_clusters = 5;
  gen.cluster_dim_counts = {5, 5, 5, 5, 5};
  gen.seed = 13;
  auto data = GenerateSynthetic(gen);
  std::vector<size_t> medoids{0, gen.num_points / 5, 2 * gen.num_points / 5,
                              3 * gen.num_points / 5,
                              4 * gen.num_points / 5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(internal::LocalityStats(data->dataset, medoids));
  }
  state.SetItemsProcessed(state.iterations() * gen.num_points);
}
BENCHMARK(BM_LocalityStats)->Arg(10000)->Arg(50000);

void BM_AssignPoints(benchmark::State& state) {
  GeneratorParams gen;
  gen.num_points = static_cast<size_t>(state.range(0));
  gen.space_dims = 20;
  gen.num_clusters = 5;
  gen.cluster_dim_counts = {5, 5, 5, 5, 5};
  gen.seed = 17;
  auto data = GenerateSynthetic(gen);
  std::vector<size_t> medoids{0, gen.num_points / 5, 2 * gen.num_points / 5,
                              3 * gen.num_points / 5,
                              4 * gen.num_points / 5};
  std::vector<DimensionSet> dims(5, DimensionSet(20, {0, 4, 9, 13, 19}));
  for (auto _ : state) {
    benchmark::DoNotOptimize(AssignPoints(data->dataset, medoids, dims));
  }
  state.SetItemsProcessed(state.iterations() * gen.num_points);
}
BENCHMARK(BM_AssignPoints)->Arg(10000)->Arg(50000);

void BM_FindDimensions(benchmark::State& state) {
  Rng rng(19);
  const size_t k = 5, d = static_cast<size_t>(state.range(0));
  Matrix X(k, d);
  for (size_t i = 0; i < k; ++i)
    for (size_t j = 0; j < d; ++j) X(i, j) = rng.Uniform(0, 30);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FindDimensions(X, 5.0));
  }
}
BENCHMARK(BM_FindDimensions)->Arg(20)->Arg(100);

void BM_CliqueDenseUnits(benchmark::State& state) {
  GeneratorParams gen;
  gen.num_points = static_cast<size_t>(state.range(0));
  gen.space_dims = 10;
  gen.num_clusters = 3;
  gen.cluster_dim_counts = {4, 4, 4};
  gen.seed = 23;
  auto data = GenerateSynthetic(gen);
  auto grid = Grid::Build(data->dataset, 10);
  auto cells = grid->QuantizeAll(data->dataset);
  MinerParams params;
  params.xi = 10;
  params.tau_percent = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MineDenseUnits(cells, gen.num_points, 10, params));
  }
  state.SetItemsProcessed(state.iterations() * gen.num_points);
}
BENCHMARK(BM_CliqueDenseUnits)->Arg(10000)->Arg(30000);

void BM_ProclusEndToEnd(benchmark::State& state) {
  GeneratorParams gen;
  gen.num_points = static_cast<size_t>(state.range(0));
  gen.space_dims = 20;
  gen.num_clusters = 5;
  gen.cluster_dim_counts = {5, 5, 5, 5, 5};
  gen.seed = 29;
  auto data = GenerateSynthetic(gen);
  for (auto _ : state) {
    ProclusParams params;
    params.num_clusters = 5;
    params.avg_dims = 5.0;
    params.seed = 31;
    benchmark::DoNotOptimize(RunProclus(data->dataset, params));
  }
  state.SetItemsProcessed(state.iterations() * gen.num_points);
}
BENCHMARK(BM_ProclusEndToEnd)->Unit(benchmark::kMillisecond)->Arg(10000);

void BM_ClassifyPoints(benchmark::State& state) {
  GeneratorParams gen;
  gen.num_points = static_cast<size_t>(state.range(0));
  gen.space_dims = 20;
  gen.num_clusters = 5;
  gen.cluster_dim_counts = {5, 5, 5, 5, 5};
  gen.seed = 37;
  auto data = GenerateSynthetic(gen);
  ProclusParams params;
  params.num_clusters = 5;
  params.avg_dims = 5.0;
  params.seed = 41;
  auto model = RunProclus(data->dataset, params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ClassifyPoints(*model, data->dataset));
  }
  state.SetItemsProcessed(state.iterations() * gen.num_points);
}
BENCHMARK(BM_ClassifyPoints)->Arg(10000)->Arg(50000);

void BM_JacobiEigen(benchmark::State& state) {
  Rng rng(43);
  const size_t n = static_cast<size_t>(state.range(0));
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = i; j < n; ++j) {
      m(i, j) = rng.Uniform(-1, 1);
      m(j, i) = m(i, j);
    }
  for (auto _ : state) {
    benchmark::DoNotOptimize(JacobiEigen(m));
  }
}
BENCHMARK(BM_JacobiEigen)->Arg(10)->Arg(20)->Arg(50);

void BM_OrclusEndToEnd(benchmark::State& state) {
  GeneratorParams gen;
  gen.num_points = static_cast<size_t>(state.range(0));
  gen.space_dims = 12;
  gen.num_clusters = 3;
  gen.cluster_dim_counts = {4, 4, 4};
  gen.outlier_fraction = 0.0;
  gen.seed = 47;
  auto data = GenerateSynthetic(gen);
  for (auto _ : state) {
    OrclusParams params;
    params.num_clusters = 3;
    params.subspace_dims = 4;
    params.seed = 53;
    benchmark::DoNotOptimize(RunOrclus(data->dataset, params));
  }
  state.SetItemsProcessed(state.iterations() * gen.num_points);
}
BENCHMARK(BM_OrclusEndToEnd)->Unit(benchmark::kMillisecond)->Arg(5000);

}  // namespace
}  // namespace proclus

BENCHMARK_MAIN();
