// Microbenchmarks of the library's hot kernels: distance functions,
// segmental distance, the synthetic generator, greedy medoid selection,
// locality statistics, point assignment, dimension selection, CLIQUE
// dense-unit mining, Jacobi eigendecomposition, and the end-to-end
// PROCLUS / ORCLUS drivers.
//
// Follows the repo harness convention (bench_util.h): --quick / --scale
// shrink the inputs, --reps takes the best-of-N wall time, --json emits
// the machine-diffable document behind BENCH_kernels.json. Each case
// reports items/s (items = rows or element-operations, per case).
//
// --smoke asserts every case completes with a finite positive
// throughput and that the end-to-end PROCLUS case is run-to-run
// deterministic (identical labels on a second run) — wired into ctest
// under the bench_smoke label. Absolute throughput is never asserted
// here; kernels.cc owns the batched-vs-scalar performance guarantee.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "bench_util.h"
#include "clique/dense_units.h"
#include "clique/grid.h"
#include "common/eigen.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/assign.h"
#include "core/classify.h"
#include "core/find_dimensions.h"
#include "core/greedy.h"
#include "core/proclus.h"
#include "distance/metric.h"
#include "distance/segmental.h"
#include "extensions/orclus.h"
#include "gen/synthetic.h"

namespace {

using namespace proclus;
using namespace proclus::bench;

// Sink the compiler cannot eliminate the timed work into.
volatile double g_sink = 0.0;

std::vector<double> RandomPoint(size_t dims, Rng& rng) {
  std::vector<double> p(dims);
  for (double& v : p) v = rng.Uniform(0, 100);
  return p;
}

SyntheticData MakeData(size_t n, size_t d, size_t k,
                       std::vector<size_t> dims, uint64_t seed) {
  GeneratorParams gen;
  gen.num_points = n;
  gen.space_dims = d;
  gen.num_clusters = k;
  gen.cluster_dim_counts = std::move(dims);
  gen.seed = seed;
  auto data = GenerateSynthetic(gen);
  if (!data.ok()) {
    std::fprintf(stderr, "generator failed: %s\n",
                 data.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(data).value();
}

struct Case {
  std::string name;
  double items = 0.0;              // work per timed pass, for items/s
  std::function<void()> pass;      // one timed pass
};

// Times each case as the best of `reps` passes and reports items/s.
// Returns false if any throughput comes out non-finite or non-positive.
bool RunCases(const std::vector<Case>& cases, size_t reps) {
  bool ok = true;
  for (const Case& c : cases) {
    double best = std::numeric_limits<double>::infinity();
    for (size_t rep = 0; rep < reps; ++rep) {
      Timer timer;
      c.pass();
      best = std::min(best, timer.ElapsedSeconds());
    }
    const double rate = c.items / best;
    PrintHeader(c.name);
    PrintKV("items per pass", c.items);
    PrintKV("seconds", best);
    PrintKV("Mitems/s", rate / 1e6);
    if (!std::isfinite(rate) || rate <= 0.0) {
      std::fprintf(stderr, "FAIL %s: non-finite or zero throughput\n",
                   c.name.c_str());
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions options = ParseOptions(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;

  const size_t reps = options.repetitions < 3 ? 3 : options.repetitions;
  // Row counts for the dataset-driven cases; the paper-scale defaults
  // shrink under --quick/--scale like every other harness binary.
  const size_t n_scan = options.Points(50000);
  const size_t n_mid = options.Points(10000);
  const size_t n_small = std::max<size_t>(1000, n_mid / 5);

  // Shared inputs, built once outside the timed passes.
  Rng rng(1);
  const auto a20 = RandomPoint(20, rng), b20 = RandomPoint(20, rng);
  const auto a100 = RandomPoint(100, rng), b100 = RandomPoint(100, rng);
  const auto a1000 = RandomPoint(1000, rng), b1000 = RandomPoint(1000, rng);
  std::vector<uint32_t> dims7;
  for (uint32_t j = 0; j < 7; ++j) dims7.push_back(j * 7);

  SyntheticData scan_data =
      MakeData(n_scan, 20, 5, {5, 5, 5, 5, 5}, 13);
  std::vector<size_t> medoids{0, n_scan / 5, 2 * n_scan / 5, 3 * n_scan / 5,
                              4 * n_scan / 5};
  std::vector<DimensionSet> assign_dims(5,
                                        DimensionSet(20, {0, 4, 9, 13, 19}));

  SyntheticData greedy_data = MakeData(2000, 20, 5, {5, 5, 5, 5, 5}, 7);
  std::vector<size_t> candidates(greedy_data.dataset.size());
  for (size_t i = 0; i < candidates.size(); ++i) candidates[i] = i;

  Rng fd_rng(19);
  Matrix locality(5, 100);
  for (size_t i = 0; i < 5; ++i)
    for (size_t j = 0; j < 100; ++j) locality(i, j) = fd_rng.Uniform(0, 30);

  SyntheticData clique_data = MakeData(n_mid, 10, 3, {4, 4, 4}, 23);
  auto grid = Grid::Build(clique_data.dataset, 10);
  auto cells = grid->QuantizeAll(clique_data.dataset);
  MinerParams miner;
  miner.xi = 10;
  miner.tau_percent = 1.0;

  Rng eig_rng(43);
  Matrix sym(50, 50);
  for (size_t i = 0; i < 50; ++i)
    for (size_t j = i; j < 50; ++j) {
      sym(i, j) = eig_rng.Uniform(-1, 1);
      sym(j, i) = sym(i, j);
    }

  SyntheticData proclus_data = MakeData(n_mid, 20, 5, {5, 5, 5, 5, 5}, 29);
  ProclusParams proclus_params;
  proclus_params.num_clusters = 5;
  proclus_params.avg_dims = 5.0;
  proclus_params.seed = 31;
  auto classify_model = RunProclus(proclus_data.dataset, proclus_params);
  if (!classify_model.ok()) {
    std::fprintf(stderr, "PROCLUS failed: %s\n",
                 classify_model.status().ToString().c_str());
    return 1;
  }

  SyntheticData orclus_data = MakeData(n_small, 12, 3, {4, 4, 4}, 47);
  OrclusParams orclus_params;
  orclus_params.num_clusters = 3;
  orclus_params.subspace_dims = 4;
  orclus_params.seed = 53;

  constexpr size_t kDistEvals = 20000;
  std::vector<Case> cases;
  auto dist_case = [&](const char* name, const std::vector<double>& a,
                       const std::vector<double>& b, auto fn) {
    cases.push_back({name, static_cast<double>(kDistEvals * a.size()), [&, fn] {
                       double acc = 0.0;
                       for (size_t i = 0; i < kDistEvals; ++i) acc += fn(a, b);
                       g_sink = acc;
                     }});
  };
  dist_case("manhattan d=20", a20, b20,
            [](const auto& a, const auto& b) {
              return ManhattanDistance(a, b);
            });
  dist_case("manhattan d=100", a100, b100,
            [](const auto& a, const auto& b) {
              return ManhattanDistance(a, b);
            });
  dist_case("manhattan d=1000", a1000, b1000,
            [](const auto& a, const auto& b) {
              return ManhattanDistance(a, b);
            });
  dist_case("euclidean d=20", a20, b20,
            [](const auto& a, const auto& b) {
              return EuclideanDistance(a, b);
            });
  dist_case("euclidean d=100", a100, b100,
            [](const auto& a, const auto& b) {
              return EuclideanDistance(a, b);
            });
  cases.push_back({"segmental 7-of-50", static_cast<double>(kDistEvals * 7),
                   [&] {
                     double acc = 0.0;
                     for (size_t i = 0; i < kDistEvals; ++i)
                       acc += ManhattanSegmentalDistance(a100, b100, dims7);
                     g_sink = acc;
                   }});
  cases.push_back({"synthetic generator", static_cast<double>(n_mid), [&] {
                     GeneratorParams gen;
                     gen.num_points = n_mid;
                     gen.space_dims = 20;
                     gen.num_clusters = 5;
                     gen.poisson_mean = 5.0;
                     gen.seed = 5;
                     auto result = GenerateSynthetic(gen);
                     g_sink = result.ok()
                                  ? static_cast<double>(result->dataset.size())
                                  : 0.0;
                   }});
  cases.push_back(
      {"greedy pick 50", static_cast<double>(greedy_data.dataset.size()), [&] {
         Rng pick_rng(11);
         auto picked = GreedyPick(greedy_data.dataset, candidates, 50,
                                  MetricKind::kManhattan, pick_rng);
         g_sink = static_cast<double>(picked.size());
       }});
  cases.push_back({"locality stats", static_cast<double>(n_scan), [&] {
                     auto stats =
                         internal::LocalityStats(scan_data.dataset, medoids);
                     g_sink = stats(0, 0);
                   }});
  cases.push_back({"assign points", static_cast<double>(n_scan), [&] {
                     auto labels = AssignPoints(scan_data.dataset, medoids,
                                                assign_dims);
                     g_sink = static_cast<double>(labels.back());
                   }});
  cases.push_back({"find dimensions d=100", 500.0, [&] {
                     auto found = FindDimensions(locality, 5.0);
                     g_sink = found.ok()
                                  ? static_cast<double>(found->size())
                                  : -1.0;
                   }});
  cases.push_back({"clique dense units", static_cast<double>(n_mid), [&] {
                     auto units = MineDenseUnits(cells, n_mid, 10, miner);
                     g_sink = units.ok()
                                  ? static_cast<double>(units->levels.size())
                                  : -1.0;
                   }});
  cases.push_back({"jacobi eigen 50x50", 50.0 * 50.0, [&] {
                     auto eig = JacobiEigen(sym);
                     g_sink = eig.ok() ? eig->values[0] : -1.0;
                   }});
  cases.push_back({"classify points", static_cast<double>(n_mid), [&] {
                     auto labels =
                         ClassifyPoints(*classify_model, proclus_data.dataset);
                     g_sink = labels.ok()
                                  ? static_cast<double>(labels->back())
                                  : -1.0;
                   }});
  cases.push_back({"proclus end-to-end", static_cast<double>(n_mid), [&] {
                     auto model = RunProclus(proclus_data.dataset,
                                             proclus_params);
                     g_sink = model.ok() ? model->objective : -1.0;
                   }});
  cases.push_back({"orclus end-to-end", static_cast<double>(n_small), [&] {
                     auto model = RunOrclus(orclus_data.dataset,
                                            orclus_params);
                     g_sink = model.ok() ? model->objective : -1.0;
                   }});

  bool ok = RunCases(cases, reps);

  if (smoke) {
    // Run-to-run determinism of the heaviest composite case: two
    // fresh end-to-end runs must agree bit-for-bit.
    auto first = RunProclus(proclus_data.dataset, proclus_params);
    auto second = RunProclus(proclus_data.dataset, proclus_params);
    if (!first.ok() || !second.ok() || first->labels != second->labels ||
        first->objective != second->objective) {
      std::fprintf(stderr, "FAIL proclus end-to-end: nondeterministic\n");
      ok = false;
    }
  }

  FinishJson("micro_kernels");
  return ok ? 0 : 1;
}
