#include "bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/timer.h"
#include "eval/matching.h"

namespace proclus::bench {

BenchOptions ParseOptions(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--quick") == 0) {
      options.scale = 0.1;
    } else if (std::strncmp(arg, "--scale=", 8) == 0) {
      options.scale = std::atof(arg + 8);
      if (options.scale <= 0.0) options.scale = 1.0;
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      options.seed = static_cast<uint64_t>(std::atoll(arg + 7));
    } else if (std::strncmp(arg, "--algo-seed=", 12) == 0) {
      options.algo_seed = static_cast<uint64_t>(std::atoll(arg + 12));
    } else if (std::strncmp(arg, "--reps=", 7) == 0) {
      options.repetitions = static_cast<size_t>(std::atoll(arg + 7));
      if (options.repetitions == 0) options.repetitions = 1;
    }
  }
  return options;
}

GeneratorParams Case1Params(const BenchOptions& options) {
  GeneratorParams params;
  params.num_points = options.Points();
  params.space_dims = 20;
  params.num_clusters = 5;
  params.cluster_dim_counts = {7, 7, 7, 7, 7};
  params.outlier_fraction = 0.05;
  params.seed = options.seed;
  return params;
}

GeneratorParams Case2Params(const BenchOptions& options) {
  GeneratorParams params;
  params.num_points = options.Points();
  params.space_dims = 20;
  params.num_clusters = 5;
  // The paper's second file: two 2-d clusters, one 3-d, one 6-d, one 7-d
  // (average l = 4).
  params.cluster_dim_counts = {7, 3, 2, 6, 2};
  params.outlier_fraction = 0.05;
  params.seed = options.seed;
  return params;
}

ProclusParams DefaultProclus(size_t k, double l, uint64_t seed) {
  ProclusParams params;
  params.num_clusters = k;
  params.avg_dims = l;
  params.seed = seed;
  return params;
}

HarnessRun RunProclusHarness(const SyntheticData& data,
                             const ProclusParams& params) {
  Timer timer;
  auto result = RunProclus(data.dataset, params);
  double seconds = timer.ElapsedSeconds();
  if (!result.ok()) {
    std::fprintf(stderr, "PROCLUS failed: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  auto confusion = ConfusionMatrix::Build(
      result->labels, params.num_clusters, data.truth.labels,
      data.truth.num_clusters());
  if (!confusion.ok()) {
    std::fprintf(stderr, "confusion failed: %s\n",
                 confusion.status().ToString().c_str());
    std::exit(1);
  }
  std::vector<int> match = MatchClusters(*confusion);
  return HarnessRun{std::move(result).value(), std::move(confusion).value(),
                    std::move(match), seconds};
}

void PrintKV(const std::string& key, const std::string& value) {
  std::printf("%-32s = %s\n", key.c_str(), value.c_str());
}

void PrintKV(const std::string& key, double value) {
  std::printf("%-32s = %.4f\n", key.c_str(), value);
}

void PrintHeader(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

}  // namespace proclus::bench
