#include "bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "common/timer.h"
#include "eval/matching.h"

namespace proclus::bench {

namespace {

// --json capture state: PrintHeader starts a section, PrintKV appends a
// [key, value] pair to the last section, FinishJson renders the document.
struct JsonSection {
  std::string title;
  // (key, rendered value) — the value string is already valid JSON.
  std::vector<std::pair<std::string, std::string>> values;
};

bool json_output = false;
std::vector<JsonSection> json_sections;

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonAdd(const std::string& key, std::string rendered) {
  if (json_sections.empty()) json_sections.push_back({"", {}});
  json_sections.back().values.emplace_back(key, std::move(rendered));
}

}  // namespace

BenchOptions ParseOptions(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--quick") == 0) {
      options.scale = 0.1;
    } else if (std::strncmp(arg, "--scale=", 8) == 0) {
      options.scale = std::atof(arg + 8);
      if (options.scale <= 0.0) options.scale = 1.0;
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      options.seed = static_cast<uint64_t>(std::atoll(arg + 7));
    } else if (std::strncmp(arg, "--algo-seed=", 12) == 0) {
      options.algo_seed = static_cast<uint64_t>(std::atoll(arg + 12));
    } else if (std::strncmp(arg, "--reps=", 7) == 0) {
      options.repetitions = static_cast<size_t>(std::atoll(arg + 7));
      if (options.repetitions == 0) options.repetitions = 1;
    } else if (std::strcmp(arg, "--json") == 0) {
      options.json = true;
    }
  }
  SetJsonOutput(options.json);
  return options;
}

GeneratorParams Case1Params(const BenchOptions& options) {
  GeneratorParams params;
  params.num_points = options.Points();
  params.space_dims = 20;
  params.num_clusters = 5;
  params.cluster_dim_counts = {7, 7, 7, 7, 7};
  params.outlier_fraction = 0.05;
  params.seed = options.seed;
  return params;
}

GeneratorParams Case2Params(const BenchOptions& options) {
  GeneratorParams params;
  params.num_points = options.Points();
  params.space_dims = 20;
  params.num_clusters = 5;
  // The paper's second file: two 2-d clusters, one 3-d, one 6-d, one 7-d
  // (average l = 4).
  params.cluster_dim_counts = {7, 3, 2, 6, 2};
  params.outlier_fraction = 0.05;
  params.seed = options.seed;
  return params;
}

ProclusParams DefaultProclus(size_t k, double l, uint64_t seed) {
  ProclusParams params;
  params.num_clusters = k;
  params.avg_dims = l;
  params.seed = seed;
  return params;
}

HarnessRun RunProclusHarness(const SyntheticData& data,
                             const ProclusParams& params) {
  Timer timer;
  auto result = RunProclus(data.dataset, params);
  double seconds = timer.ElapsedSeconds();
  if (!result.ok()) {
    std::fprintf(stderr, "PROCLUS failed: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  auto confusion = ConfusionMatrix::Build(
      result->labels, params.num_clusters, data.truth.labels,
      data.truth.num_clusters());
  if (!confusion.ok()) {
    std::fprintf(stderr, "confusion failed: %s\n",
                 confusion.status().ToString().c_str());
    std::exit(1);
  }
  std::vector<int> match = MatchClusters(*confusion);
  return HarnessRun{std::move(result).value(), std::move(confusion).value(),
                    std::move(match), seconds};
}

void PrintKV(const std::string& key, const std::string& value) {
  if (json_output) {
    JsonAdd(key, "\"" + JsonEscape(value) + "\"");
    return;
  }
  std::printf("%-32s = %s\n", key.c_str(), value.c_str());
}

void PrintKV(const std::string& key, double value) {
  if (json_output) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    JsonAdd(key, buffer);
    return;
  }
  std::printf("%-32s = %.4f\n", key.c_str(), value);
}

void PrintHeader(const std::string& title) {
  if (json_output) {
    json_sections.push_back({title, {}});
    return;
  }
  std::printf("\n==== %s ====\n", title.c_str());
}

bool JsonOutput() { return json_output; }

void SetJsonOutput(bool enabled) { json_output = enabled; }

void PrintRunStats(const std::string& prefix, const RunStats& stats) {
  PrintKV(prefix + " scans", static_cast<double>(stats.scans_issued));
  PrintKV(prefix + " rows visited",
          static_cast<double>(stats.rows_visited));
  PrintKV(prefix + " bytes read", static_cast<double>(stats.bytes_read));
  PrintKV(prefix + " distance evals",
          static_cast<double>(stats.distance_evals));
  PrintKV(prefix + " kernel batches",
          static_cast<double>(stats.kernel_batches));
  PrintKV(prefix + " kernel rows",
          static_cast<double>(stats.kernel_rows));
  PrintKV(prefix + " tile reuse hits",
          static_cast<double>(stats.tile_reuse_hits));
  PrintKV(prefix + " locality cache hits",
          static_cast<double>(stats.locality_cache_hits));
  PrintKV(prefix + " locality cache misses",
          static_cast<double>(stats.locality_cache_misses));
  PrintKV(prefix + " bootstrap scans",
          static_cast<double>(stats.bootstrap_scans));
  PrintKV(prefix + " iterative scans",
          static_cast<double>(stats.iterative_scans));
  PrintKV(prefix + " refine scans",
          static_cast<double>(stats.refine_scans));
  PrintKV(prefix + " retries", static_cast<double>(stats.retries));
  PrintKV(prefix + " failed scans",
          static_cast<double>(stats.failed_scans));
  PrintKV(prefix + " wasted rows",
          static_cast<double>(stats.wasted_rows));
  PrintKV(prefix + " cancel checks",
          static_cast<double>(stats.cancel_checks));
  PrintKV(prefix + " cancelled scans",
          static_cast<double>(stats.cancelled_scans));
  PrintKV(prefix + " hedged scans",
          static_cast<double>(stats.hedged_scans));
  PrintKV(prefix + " deadline misses",
          static_cast<double>(stats.deadline_misses));
  // Per-shard counters (sharded scans only): one table row per shard, in
  // shard order, so the JSON baseline records how the work, the retries,
  // and the watchdog hedges distributed across the shard set.
  if (!stats.shard_io.empty()) {
    TableWriter table({"shard", "scans", "rows", "bytes", "retries",
                       "hedges"});
    for (size_t s = 0; s < stats.shard_io.size(); ++s) {
      const RunStats::ShardIo& io = stats.shard_io[s];
      table.AddRow({std::to_string(s), std::to_string(io.scans),
                    std::to_string(io.rows), std::to_string(io.bytes),
                    std::to_string(io.retries),
                    std::to_string(io.hedges)});
    }
    PrintTable(prefix + " shard io", table);
  }
}

void PrintTable(const std::string& name, const TableWriter& table) {
  if (!json_output) {
    std::printf("%s", table.ToString().c_str());
    return;
  }
  auto render_row = [](const std::vector<std::string>& cells) {
    std::string out = "[";
    for (size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) out += ", ";
      out += "\"" + JsonEscape(cells[i]) + "\"";
    }
    out += "]";
    return out;
  };
  JsonAdd(name + " columns", render_row(table.headers()));
  for (const std::vector<std::string>& row : table.rows())
    JsonAdd(name + " row", render_row(row));
}

void FinishJson(const std::string& binary) {
  if (!json_output) return;
  // Host metadata, so a committed baseline records what machine shaped
  // its timings (counters are machine-independent; seconds are not).
  long page_size = 0;
#if defined(_SC_PAGESIZE)
  page_size = sysconf(_SC_PAGESIZE);
#endif
  std::printf("{\"binary\": \"%s\", \"host\": "
              "{\"hardware_concurrency\": %u, \"page_size_bytes\": %ld}, "
              "\"sections\": [",
              JsonEscape(binary).c_str(),
              std::thread::hardware_concurrency(), page_size);
  for (size_t s = 0; s < json_sections.size(); ++s) {
    const JsonSection& section = json_sections[s];
    std::printf("%s\n  {\"title\": \"%s\", \"values\": [",
                s == 0 ? "" : ",", JsonEscape(section.title).c_str());
    for (size_t i = 0; i < section.values.size(); ++i) {
      std::printf("%s\n    [\"%s\", %s]", i == 0 ? "" : ",",
                  JsonEscape(section.values[i].first).c_str(),
                  section.values[i].second.c_str());
    }
    std::printf("]}");
  }
  std::printf("\n]}\n");
  json_sections.clear();
}

}  // namespace proclus::bench
