// Shared implementation of the Table 1-4 harness binaries: runs PROCLUS on
// a Case 1 / Case 2 input file and prints the paper's dimension table
// (Tables 1/2) and confusion matrix (Tables 3/4).

#ifndef PROCLUS_BENCH_TABLE_COMMON_H_
#define PROCLUS_BENCH_TABLE_COMMON_H_

#include "bench_util.h"

namespace proclus::bench {

/// Which of the two paper artifacts to print.
enum class TableKind { kDimensions, kConfusion };

/// Runs the full Table 1-4 experiment for the given case parameters and
/// prints the requested table. Returns 0 on success.
int RunTableExperiment(const char* title, const GeneratorParams& gen_params,
                       double avg_dims, const BenchOptions& options,
                       TableKind kind);

}  // namespace proclus::bench

#endif  // PROCLUS_BENCH_TABLE_COMMON_H_
