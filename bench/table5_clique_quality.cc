// Reproduces Table 5 and the surrounding CLIQUE quality discussion of
// Section 4.2:
//
//  * A tau sweep {0.5, 0.8, 0.2, 0.1} (percent of N) on the Case 1 file
//    with xi = 10, reporting the percentage of cluster points discovered,
//    the average overlap, and the maximum subspace dimensionality found.
//    The paper observed: overlap 1 but low coverage (42.7% / 30.7%) at
//    tau = 0.5 / 0.8; spurious 8-dimensional clusters and coverage
//    dropping to 21.2% at tau = 0.1.
//  * The "restricted to 7 dimensions" run (tau = 0.1) that produced 48
//    output clusters with coverage 74.6% and average overlap 3.63,
//    including a snapshot of the input/output matching (Table 5).

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "clique/clique.h"
#include "common/timer.h"
#include "eval/report.h"

namespace {

using namespace proclus;
using namespace proclus::bench;

void PrintCliqueSummary(const CliqueResult& result, double seconds) {
  PrintKV("threshold (points)", static_cast<double>(result.threshold));
  PrintKV("max subspace dimensionality",
          static_cast<double>(result.max_level));
  PrintKV("output clusters", static_cast<double>(result.clusters.size()));
  PrintKV("covered points", static_cast<double>(result.covered_points));
  PrintKV("cluster point coverage", result.cluster_point_coverage);
  PrintKV("average overlap", result.overlap);
  PrintKV("truncated", result.truncated ? 1.0 : 0.0);
  PrintKV("clique seconds", seconds);
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions options = ParseOptions(argc, argv);
  GeneratorParams gen_params = Case1Params(options);
  auto data = GenerateSynthetic(gen_params);
  if (!data.ok()) {
    std::fprintf(stderr, "generator failed: %s\n",
                 data.status().ToString().c_str());
    return 1;
  }

  PrintHeader("Table 5 / Section 4.2: CLIQUE output quality (Case 1 file)");
  PrintKV("N", static_cast<double>(gen_params.num_points));
  PrintKV("xi", 10.0);

  for (double tau : {0.5, 0.8, 0.2, 0.1}) {
    PrintHeader("CLIQUE tau = " + std::to_string(tau) +
                "% (MDL pruning, max-level clusters)");
    CliqueParams params;
    params.xi = 10;
    params.tau_percent = tau;
    params.report_mode = CliqueReportMode::kMaxLevel;
    Timer timer;
    auto result = RunClique(data->dataset, params, &data->truth.labels);
    double seconds = timer.ElapsedSeconds();
    if (!result.ok()) {
      std::fprintf(stderr, "clique failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    PrintCliqueSummary(*result, seconds);
  }

  // The paper's final run: tau = 0.1, clusters restricted to exactly 7
  // dimensions (the generated dimensionality).
  PrintHeader("CLIQUE tau = 0.1%, restricted to 7-dimensional subspaces");
  CliqueParams restricted;
  restricted.xi = 10;
  restricted.tau_percent = 0.1;
  restricted.report_mode = CliqueReportMode::kTargetDim;
  restricted.target_dim = 7;
  Timer timer;
  auto result = RunClique(data->dataset, restricted, &data->truth.labels);
  double seconds = timer.ElapsedSeconds();
  if (!result.ok()) {
    std::fprintf(stderr, "clique failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  PrintCliqueSummary(*result, seconds);

  // Table 5 snapshot: per output cluster, points per input cluster.
  if (!JsonOutput())
    std::printf("\nTable 5 snapshot (largest 10 output clusters):\n");
  std::vector<size_t> order(result->clusters.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return result->clusters[a].point_count > result->clusters[b].point_count;
  });
  TableWriter table({"Output", "A", "B", "C", "D", "E", "Out.", "Total"});
  for (size_t rank = 0; rank < std::min<size_t>(10, order.size()); ++rank) {
    const CliqueCluster& cluster = result->clusters[order[rank]];
    std::vector<std::string> row;
    row.push_back(std::to_string(order[rank] + 1));
    for (size_t label = 0; label < 6; ++label)
      row.push_back(std::to_string(cluster.label_counts[label]));
    row.push_back(std::to_string(cluster.point_count));
    table.AddRow(std::move(row));
  }
  PrintTable("table5", table);
  FinishJson("table5_clique_quality");
  return 0;
}
