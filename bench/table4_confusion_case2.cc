// Reproduces Table 4 of the paper: the confusion matrix on the Case 2 file
// with clusters of different dimensionality (same run as Table 2).
//
// Expected shape: like Table 3 a dominant input cluster per output row,
// with slightly more misplaced points than Case 1 (the paper's Table 4
// also shows small off-diagonal counts).

#include "table_common.h"

int main(int argc, char** argv) {
  using namespace proclus::bench;
  BenchOptions options = ParseOptions(argc, argv);
  int rc = RunTableExperiment(
      "Table 4: confusion matrix (Case 2, l = 4)", Case2Params(options),
      /*avg_dims=*/4.0, options, TableKind::kConfusion);
  FinishJson("table4_confusion_case2");
  return rc;
}
