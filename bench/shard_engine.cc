// Shard-engine harness: measures what the sharded scan path and the
// DiskSource prefetch buy, and proves both bit-identical on every run.
//
// Part 1 — prefetch A/B at the N=50k acceptance point of
// BENCH_scan_engine.json: PROCLUS over memory, disk with the inline read
// loop (set_prefetch(false)), and disk with the double-buffered prefetch.
// At this scale the snapshot is page-cache hot after the first scan, so
// the read side is pure CPU (memcpy + checksum) and the prefetch can only
// help when a second core is available to run the producer.
//
// Part 2 — shard scaling: whole-set scans over a >= 10^7-row snapshot for
// shard count x {memory, disk}, each sharded run using `shards` worker
// threads on the persistent pool. Every shard layout is built (and
// fsync'd) before any timing starts and every configuration gets one
// untimed warmup scan, so writeback of the freshly written shard files
// and first-touch page-cache misses don't land inside a timed region.
// Every configuration must reproduce the unsharded consumer bits exactly.
//
// Part 3 — cold-cache prefetch A/B: one whole-set scan of the Part 2
// snapshot with the page cache evicted (posix_fadvise DONTNEED) before
// each run. Here the reads are real device I/O, which the prefetch
// producer overlaps with consumer compute even on a single core — this
// is the regime the double buffer is for.
//
// --smoke asserts the bit-identity of every configuration plus a
// flake-resistant scaling bound (the best sharded disk run may not be
// slower than 1.15x the single-shard run) and exits nonzero on any
// violation — wired into ctest under the bench_smoke label (RUN_SERIAL:
// it is a timing assertion).
//
// NOTE: pool size. VMs and containers often under-report
// hardware_concurrency; set PROCLUS_POOL_THREADS to the real core count
// when reproducing the committed baseline (see common/thread_pool.h). The
// committed JSON records both values — on a single-core host the sharded
// configurations time-slice one CPU, so parity with single-shard (not
// speedup) is the expected reading there.

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "core/consumers.h"
#include "data/binary_io.h"
#include "data/engine.h"
#include "data/point_source.h"
#include "data/sharded_source.h"

namespace {

using namespace proclus;
using namespace proclus::bench;

constexpr size_t kShardCounts[] = {1, 2, 4, 8};

// Flushes dirty pages of `path` and asks the kernel to drop its page
// cache, so the next read is real device I/O. Best effort: a failure
// only means a warmer-than-intended run.
void EvictFromPageCache(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return;
  ::fdatasync(fd);
  ::posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED);
  ::close(fd);
}

struct EngineRun {
  ProjectedClustering clustering;
  double seconds = 0.0;
};

EngineRun RunOnce(const PointSource& source, const ProclusParams& params) {
  Timer timer;
  auto result = RunProclusOnSource(source, params);
  double seconds = timer.ElapsedSeconds();
  if (!result.ok()) {
    std::fprintf(stderr, "PROCLUS failed: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return EngineRun{std::move(result).value(), seconds};
}

bool SameClustering(const ProjectedClustering& a,
                    const ProjectedClustering& b) {
  return a.labels == b.labels && a.medoids == b.medoids &&
         a.objective == b.objective && a.iterations == b.iterations;
}

// One timed whole-set scan configuration of Part 2 / Part 3.
struct ScanRun {
  double seconds = 0.0;
  RunStats stats;
  bool identical = false;  // Consumer bits match the unsharded run.
};

ScanRun TimeScans(const PointSource& source, const Matrix& medoids,
                  size_t num_threads, size_t repetitions, size_t warmups,
                  const LocalityStatsConsumer& reference) {
  ScanRun run;
  ScanOptions options;
  options.num_threads = num_threads;
  LocalityStatsConsumer consumer;
  for (size_t w = 0; w < warmups; ++w) {
    if (!consumer.Bind(&medoids).ok()) std::exit(1);
    if (!ScanExecutor(options).Run(source, {&consumer}).ok()) std::exit(1);
  }
  options.stats = &run.stats;
  Timer timer;
  for (size_t rep = 0; rep < repetitions; ++rep) {
    if (!consumer.Bind(&medoids).ok()) std::exit(1);
    Status status = ScanExecutor(options).Run(source, {&consumer});
    if (!status.ok()) {
      std::fprintf(stderr, "scan failed: %s\n", status.ToString().c_str());
      std::exit(1);
    }
  }
  run.seconds = timer.ElapsedSeconds();
  run.identical = consumer.stats() == reference.stats();
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions options = ParseOptions(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  bool ok = true;

  const char* pool_env = std::getenv("PROCLUS_POOL_THREADS");

  // -------------------------------------------------------------------
  // Part 1: prefetch A/B at the scan_engine acceptance point.
  // -------------------------------------------------------------------
  GeneratorParams gen = Case1Params(options);
  gen.num_points = options.Points(50000);
  auto data = GenerateSynthetic(gen);
  if (!data.ok()) {
    std::fprintf(stderr, "generator failed: %s\n",
                 data.status().ToString().c_str());
    return 1;
  }
  ProclusParams params = DefaultProclus(5, 7.0, options.algo_seed);
  params.num_restarts = 2;
  params.max_iterations = 30;
  params.max_no_improve = 30;

  const std::string prefix =
      "/tmp/proclus_shard_engine_" + std::to_string(::getpid());
  const std::string disk_path = prefix + ".bin";
  Status written = WriteBinaryFile(data->dataset, disk_path);
  if (!written.ok()) {
    std::fprintf(stderr, "snapshot write failed: %s\n",
                 written.ToString().c_str());
    return 1;
  }
  auto disk = DiskSource::Open(disk_path);
  if (!disk.ok()) {
    std::fprintf(stderr, "snapshot open failed: %s\n",
                 disk.status().ToString().c_str());
    return 1;
  }
  MemorySource memory(data->dataset);

  PrintHeader("Prefetch: disk vs memory at N=50k");
  PrintKV("N", static_cast<double>(gen.num_points));
  PrintKV("d", static_cast<double>(gen.space_dims));
  PrintKV("k", static_cast<double>(gen.num_clusters));
  PrintKV("pool threads (env)", pool_env != nullptr ? pool_env : "unset");
  PrintKV("hardware_concurrency",
          static_cast<double>(std::thread::hardware_concurrency()));

  EngineRun mem_run = RunOnce(memory, params);
  disk->set_prefetch(false);
  EngineRun disk_inline = RunOnce(*disk, params);
  disk->set_prefetch(true);
  EngineRun disk_prefetch = RunOnce(*disk, params);

  PrintKV("memory seconds", mem_run.seconds);
  PrintKV("disk inline seconds", disk_inline.seconds);
  PrintKV("disk prefetch seconds", disk_prefetch.seconds);
  PrintKV("disk gap inline (s)", disk_inline.seconds - mem_run.seconds);
  PrintKV("disk gap prefetch (s)",
          disk_prefetch.seconds - mem_run.seconds);
  PrintRunStats("disk prefetch", disk_prefetch.clustering.stats);
  if (!SameClustering(mem_run.clustering, disk_inline.clustering) ||
      !SameClustering(mem_run.clustering, disk_prefetch.clustering)) {
    std::fprintf(stderr, "FAIL: prefetch changed the clustering bits\n");
    ok = false;
  }

  // -------------------------------------------------------------------
  // Part 2: shard count x {memory, disk} scan throughput.
  // -------------------------------------------------------------------
  GeneratorParams sweep_gen;
  sweep_gen.num_points = options.Points(10000000);
  sweep_gen.space_dims = 8;
  sweep_gen.num_clusters = 4;
  sweep_gen.cluster_dim_counts = {3, 3, 3, 3};
  sweep_gen.seed = options.seed;
  auto sweep = GenerateSynthetic(sweep_gen);
  if (!sweep.ok()) {
    std::fprintf(stderr, "sweep generator failed: %s\n",
                 sweep.status().ToString().c_str());
    return 1;
  }
  const size_t rows = sweep->dataset.size();
  const std::string sweep_path = prefix + "_sweep.bin";
  written = WriteBinaryFile(sweep->dataset, sweep_path);
  if (!written.ok()) {
    std::fprintf(stderr, "sweep snapshot write failed: %s\n",
                 written.ToString().c_str());
    return 1;
  }

  MemorySource sweep_memory(sweep->dataset);
  std::vector<size_t> medoid_indices{1, rows / 4, rows / 2,
                                     (3 * rows) / 4, rows - 2};
  auto medoids = sweep_memory.Fetch(medoid_indices);
  if (!medoids.ok()) std::exit(1);

  PrintHeader("Shard scaling");
  PrintKV("rows", static_cast<double>(rows));
  PrintKV("dims", static_cast<double>(sweep_gen.space_dims));
  PrintKV("bytes",
          static_cast<double>(rows * sweep_gen.space_dims * sizeof(double)));
  const size_t reps = options.repetitions;
  PrintKV("scan repetitions", static_cast<double>(reps));

  // Build every shard layout up front: the split writes are fsync'd and
  // done with before the first timed scan, so background writeback of
  // one configuration's files cannot tax another configuration's timing.
  std::vector<ShardedSource> mem_layouts;
  std::vector<ShardedSource> disk_layouts;
  std::vector<std::string> cleanup;
  for (size_t shards : kShardCounts) {
    auto mem_sharded =
        ShardedSource::FromDataset(sweep->dataset, shards, kDefaultBlockRows);
    if (!mem_sharded.ok()) std::exit(1);
    mem_layouts.push_back(std::move(mem_sharded).value());

    ShardSplitOptions split;
    split.num_shards = shards;
    const std::string shard_prefix =
        prefix + "_sweep" + std::to_string(shards);
    auto manifest = SplitIntoShards(sweep_path, shard_prefix, split);
    if (!manifest.ok()) {
      std::fprintf(stderr, "split failed: %s\n",
                   manifest.status().ToString().c_str());
      std::exit(1);
    }
    cleanup.push_back(*manifest);
    for (size_t s = 0; s < shards; ++s) {
      std::string shard_file =
          shard_prefix + ".shard" + std::to_string(s) + ".bin";
      int fd = ::open(shard_file.c_str(), O_RDONLY);
      if (fd >= 0) {
        ::fdatasync(fd);
        ::close(fd);
      }
      cleanup.push_back(std::move(shard_file));
    }
    auto disk_sharded = ShardedSource::OpenManifest(*manifest);
    if (!disk_sharded.ok()) {
      std::fprintf(stderr, "manifest open failed: %s\n",
                   disk_sharded.status().ToString().c_str());
      std::exit(1);
    }
    disk_layouts.push_back(std::move(disk_sharded).value());
  }

  // Unsharded sequential reference: the bits every configuration must hit.
  LocalityStatsConsumer reference;
  if (!reference.Bind(&*medoids).ok()) std::exit(1);
  {
    ScanOptions reference_options;
    Status status =
        ScanExecutor(reference_options).Run(sweep_memory, {&reference});
    if (!status.ok()) std::exit(1);
  }

  double disk_seconds[std::size(kShardCounts)] = {0};
  double memory_seconds[std::size(kShardCounts)] = {0};
  for (size_t i = 0; i < std::size(kShardCounts); ++i) {
    const size_t shards = kShardCounts[i];
    const std::string tag = std::to_string(shards) + " shards";

    ScanRun mem_scan = TimeScans(mem_layouts[i], *medoids, shards, reps,
                                 /*warmups=*/1, reference);
    memory_seconds[i] = mem_scan.seconds;
    PrintKV("memory/" + tag + " seconds", mem_scan.seconds);
    PrintKV("memory/" + tag + " rows per sec",
            static_cast<double>(rows) * static_cast<double>(reps) /
                mem_scan.seconds);
    if (!mem_scan.identical) {
      std::fprintf(stderr, "FAIL: memory/%zu shards changed the bits\n",
                   shards);
      ok = false;
    }

    ScanRun disk_scan = TimeScans(disk_layouts[i], *medoids, shards, reps,
                                  /*warmups=*/1, reference);
    disk_seconds[i] = disk_scan.seconds;
    PrintKV("disk/" + tag + " seconds", disk_scan.seconds);
    PrintKV("disk/" + tag + " rows per sec",
            static_cast<double>(rows) * static_cast<double>(reps) /
                disk_scan.seconds);
    PrintRunStats("disk/" + tag, disk_scan.stats);
    if (!disk_scan.identical) {
      std::fprintf(stderr, "FAIL: disk/%zu shards changed the bits\n",
                   shards);
      ok = false;
    }
  }

  double best_sharded_disk = disk_seconds[1];
  double best_sharded_memory = memory_seconds[1];
  for (size_t i = 2; i < std::size(kShardCounts); ++i) {
    best_sharded_disk = std::min(best_sharded_disk, disk_seconds[i]);
    best_sharded_memory = std::min(best_sharded_memory, memory_seconds[i]);
  }
  PrintKV("disk speedup (best sharded)", disk_seconds[0] / best_sharded_disk);
  PrintKV("memory speedup (best sharded)",
          memory_seconds[0] / best_sharded_memory);

  if (smoke) {
    // Flake-resistant scaling bound: sharding must never make the scan
    // meaningfully slower than single-shard. Real speedups are recorded
    // in the committed full-scale baseline, not asserted at smoke scale.
    if (best_sharded_disk > disk_seconds[0] * 1.15) {
      std::fprintf(stderr,
                   "FAIL: best sharded disk scan %.3fs vs single-shard "
                   "%.3fs (> 1.15x)\n",
                   best_sharded_disk, disk_seconds[0]);
      ok = false;
    }
  }

  // -------------------------------------------------------------------
  // Part 3: cold-cache prefetch A/B over the Part 2 snapshot.
  // -------------------------------------------------------------------
  PrintHeader("Cold-cache prefetch A/B");
  auto cold = DiskSource::Open(sweep_path);
  if (!cold.ok()) std::exit(1);
  cold->set_prefetch(false);
  EvictFromPageCache(sweep_path);
  ScanRun cold_inline =
      TimeScans(*cold, *medoids, 1, 1, /*warmups=*/0, reference);
  cold->set_prefetch(true);
  EvictFromPageCache(sweep_path);
  ScanRun cold_prefetch =
      TimeScans(*cold, *medoids, 1, 1, /*warmups=*/0, reference);
  PrintKV("cold inline seconds", cold_inline.seconds);
  PrintKV("cold prefetch seconds", cold_prefetch.seconds);
  PrintKV("cold prefetch speedup",
          cold_inline.seconds / cold_prefetch.seconds);
  if (!cold_inline.identical || !cold_prefetch.identical) {
    std::fprintf(stderr, "FAIL: cold-cache scans changed the bits\n");
    ok = false;
  }

  PrintKV("all configurations bit-identical", ok ? "yes" : "NO");
  FinishJson("shard_engine");
  std::remove(disk_path.c_str());
  std::remove(sweep_path.c_str());
  for (const std::string& path : cleanup) std::remove(path.c_str());
  return ok ? 0 : 1;
}
