// Ablation: hill-climbing restarts. The paper's iterative phase is a
// single CLARANS-style climb; this library defaults to several
// independent restarts (keeping the best objective) because single
// climbs can stall in the documented local optimum where a large natural
// cluster holds two medoids and neither looks "bad". This bench
// quantifies the accuracy/time tradeoff.

#include <cstdio>

#include "bench_util.h"
#include "common/timer.h"
#include "eval/matching.h"
#include "eval/metrics.h"
#include "eval/report.h"

int main(int argc, char** argv) {
  using namespace proclus;
  using namespace proclus::bench;
  BenchOptions options = ParseOptions(argc, argv);
  BenchOptions scaled = options;
  if (scaled.scale == 1.0) scaled.scale = 0.2;
  GeneratorParams gen = Case2Params(scaled);
  auto data = GenerateSynthetic(gen);
  if (!data.ok()) return 1;

  PrintHeader("Ablation: hill-climbing restarts (Case 2 file)");
  PrintKV("N", static_cast<double>(gen.num_points));
  TableWriter table(
      {"restarts", "seed", "matched_acc", "ARI", "objective", "seconds"});

  for (size_t restarts : {1, 2, 4, 8}) {
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      ProclusParams params = DefaultProclus(5, 4.0, seed);
      params.num_restarts = restarts;
      Timer timer;
      HarnessRun run = RunProclusHarness(*data, params);
      double seconds = timer.ElapsedSeconds();
      char acc[32], ari[32], objective[32], secs[32];
      std::snprintf(acc, sizeof(acc), "%.4f", MatchedAccuracy(run.confusion));
      std::snprintf(ari, sizeof(ari), "%.4f",
                    AdjustedRandIndex(run.clustering.labels,
                                      data->truth.labels));
      std::snprintf(objective, sizeof(objective), "%.4f",
                    run.clustering.objective);
      std::snprintf(secs, sizeof(secs), "%.2f", seconds);
      table.AddRow({std::to_string(restarts), std::to_string(seed), acc,
                    ari, objective, secs});
    }
  }
  PrintTable("restarts", table);
  FinishJson("ablation_restarts");
  return 0;
}
