// Shared helpers for the paper-reproduction benchmark harness: the Case 1
// and Case 2 input configurations of Section 4.2, simple flag parsing, and
// result printing.

#ifndef PROCLUS_BENCH_BENCH_UTIL_H_
#define PROCLUS_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/proclus.h"
#include "eval/confusion.h"
#include "eval/report.h"
#include "gen/synthetic.h"

namespace proclus::bench {

/// Command-line options shared by every harness binary.
struct BenchOptions {
  /// Scale factor on N: 1.0 reproduces the paper's N = 100,000; --quick
  /// sets 0.1 for a fast smoke run.
  double scale = 1.0;
  /// Generator / algorithm seed. The default draws cluster sizes with the
  /// same moderate balance as the paper's input files (15k-26k points per
  /// cluster); heavily skewed exponential draws make the piercing problem
  /// strictly harder than the paper's inputs (see EXPERIMENTS.md).
  uint64_t seed = 22;
  /// Seed for the clustering algorithms (independent of the data seed so
  /// the same input file can be re-clustered with different randomness).
  uint64_t algo_seed = 1;
  /// Extra repetitions for timing stability.
  size_t repetitions = 1;
  /// Emit results as a JSON document instead of the human-readable
  /// report (enables machine-diffable baselines such as
  /// BENCH_scan_engine.json).
  bool json = false;

  /// Number of points after scaling.
  size_t Points(size_t paper_n = 100000) const {
    size_t n = static_cast<size_t>(static_cast<double>(paper_n) * scale);
    return n < 1000 ? 1000 : n;
  }
};

/// Parses --quick, --scale=X, --seed=N, --reps=N, --json; ignores unknown
/// flags. --json switches PrintKV/PrintHeader into JSON capture mode (see
/// FinishJson).
BenchOptions ParseOptions(int argc, char** argv);

/// Paper Case 1 input: N=100k (scaled), d=20, k=5, every cluster in a
/// 7-dimensional subspace, 5% outliers.
GeneratorParams Case1Params(const BenchOptions& options);

/// Paper Case 2 input: N=100k (scaled), d=20, k=5, cluster dimensions
/// {7, 3, 2, 6, 2} (two 2-d, one 3-d, one 6-d, one 7-d), 5% outliers.
GeneratorParams Case2Params(const BenchOptions& options);

/// PROCLUS parameters the harness uses for a given k and l.
ProclusParams DefaultProclus(size_t k, double l, uint64_t seed);

/// Runs PROCLUS, pairs output clusters to input clusters by maximal
/// agreement, and reorders labels/dimensions so output cluster i
/// corresponds to input cluster match[i] where possible. Returns the
/// reordered clustering (cluster order follows the paper's convention of
/// arbitrary numbering, so we keep PROCLUS's own order and report the
/// matching).
struct HarnessRun {
  ProjectedClustering clustering;
  ConfusionMatrix confusion;
  std::vector<int> match;  // output cluster -> input cluster (-1 if none).
  double seconds = 0.0;
};
HarnessRun RunProclusHarness(const SyntheticData& data,
                             const ProclusParams& params);

/// Prints a "key = value" line in a stable format. In JSON mode the pair
/// is captured into the current section instead.
void PrintKV(const std::string& key, const std::string& value);
void PrintKV(const std::string& key, double value);

/// Prints a section header. In JSON mode this starts a new section.
void PrintHeader(const std::string& title);

/// Whether --json capture mode is active. Harnesses use this to skip
/// free-form table/printf output that has no JSON representation.
bool JsonOutput();

/// Enables/disables JSON capture (ParseOptions calls this for --json).
void SetJsonOutput(bool enabled);

/// Prints the data-movement counters of a run under `prefix`.
void PrintRunStats(const std::string& prefix, const RunStats& stats);

/// Prints a rendered table; in JSON mode the header row is captured under
/// "<name> columns" and each data row under "<name> row" as arrays.
void PrintTable(const std::string& name, const TableWriter& table);

/// In JSON mode, writes the captured document
///   {"binary": <name>, "sections": [{"title": ..., "values": [[k, v]...]}]}
/// to stdout and clears the capture buffer; otherwise a no-op. Call once
/// at the end of main.
void FinishJson(const std::string& binary);

}  // namespace proclus::bench

#endif  // PROCLUS_BENCH_BENCH_UTIL_H_
