// Reproduces Table 2 of the paper: dimensions of input vs output clusters
// on a Case 2 file (clusters generated in subspaces of DIFFERENT
// dimensionality: 7, 3, 2, 6 and 2 dimensions; average l = 4; N = 100,000,
// d = 20, 5% outliers; PROCLUS run with k = 5, l = 4).
//
// Expected shape: the paper reports a perfect correspondence between the
// dimension sets of matched input/output clusters even though the
// cardinalities differ per cluster.

#include "table_common.h"

int main(int argc, char** argv) {
  using namespace proclus::bench;
  BenchOptions options = ParseOptions(argc, argv);
  int rc = RunTableExperiment(
      "Table 2: input vs output cluster dimensions (Case 2, l = 4)",
      Case2Params(options), /*avg_dims=*/4.0, options,
      TableKind::kDimensions);
  FinishJson("table2_dimensions_case2");
  return rc;
}
