// Reproduces Figure 7 of the paper: running time versus database size N
// for PROCLUS and CLIQUE. Inputs follow the paper: 5 clusters, each in a
// 5-dimensional subspace of a 20-dimensional space; CLIQUE run with
// xi = 10, tau = 0.5 (percent).
//
// Expected shape: both algorithms scale linearly with N, with PROCLUS
// roughly an order of magnitude faster than CLIQUE (the paper's Figure 7
// shows a ~10x gap on a log-scale y axis).

#include <cstdio>

#include "bench_util.h"
#include "clique/clique.h"
#include "common/timer.h"
#include "eval/report.h"

int main(int argc, char** argv) {
  using namespace proclus;
  using namespace proclus::bench;
  BenchOptions options = ParseOptions(argc, argv);

  PrintHeader("Figure 7: running time vs number of points");
  if (!JsonOutput())
    std::printf("# clusters in 5-dim subspaces of a 20-dim space; "
                "CLIQUE xi=10 tau=0.5%%\n");
  TableWriter table({"N", "proclus_sec", "clique_sec", "clique/proclus"});

  for (size_t paper_n : {100000, 200000, 300000, 400000, 500000}) {
    const size_t n = options.Points(paper_n);
    GeneratorParams gen;
    gen.num_points = n;
    gen.space_dims = 20;
    gen.num_clusters = 5;
    gen.cluster_dim_counts = {5, 5, 5, 5, 5};
    gen.outlier_fraction = 0.05;
    gen.seed = options.seed + paper_n;
    auto data = GenerateSynthetic(gen);
    if (!data.ok()) {
      std::fprintf(stderr, "generator failed: %s\n",
                   data.status().ToString().c_str());
      return 1;
    }

    double proclus_sec = 0.0;
    for (size_t rep = 0; rep < options.repetitions; ++rep) {
      // The paper's timing runs use the plain algorithm: one hill climb
      // (the multi-restart default targets accuracy, not speed).
      ProclusParams params = DefaultProclus(5, 5.0, options.seed + rep);
      params.num_restarts = 1;
      // Fix the hill-climb length so every sweep point does identical
      // work: timing then isolates the per-iteration cost the figure is
      // about, instead of data-dependent convergence noise.
      params.max_iterations = 60;
      params.max_no_improve = 60;
      Timer timer;
      auto result = RunProclus(data->dataset, params);
      proclus_sec += timer.ElapsedSeconds();
      if (!result.ok()) return 1;
    }
    proclus_sec /= static_cast<double>(options.repetitions);

    double clique_sec = 0.0;
    for (size_t rep = 0; rep < options.repetitions; ++rep) {
      CliqueParams params;
      params.xi = 10;
      params.tau_percent = 0.5;
      // Time the exhaustive miner: MDL pruning trades completeness for
      // speed and would make the baseline artificially cheap.
      params.mdl_prune = false;
      Timer timer;
      auto result = RunClique(data->dataset, params);
      clique_sec += timer.ElapsedSeconds();
      if (!result.ok()) return 1;
    }
    clique_sec /= static_cast<double>(options.repetitions);

    char n_buffer[32], p_buffer[32], c_buffer[32], ratio_buffer[32];
    std::snprintf(n_buffer, sizeof(n_buffer), "%zu", n);
    std::snprintf(p_buffer, sizeof(p_buffer), "%.3f", proclus_sec);
    std::snprintf(c_buffer, sizeof(c_buffer), "%.3f", clique_sec);
    std::snprintf(ratio_buffer, sizeof(ratio_buffer), "%.1f",
                  clique_sec / proclus_sec);
    table.AddRow({n_buffer, p_buffer, c_buffer, ratio_buffer});
  }
  PrintTable("fig7", table);
  FinishJson("fig7_scalability_n");
  return 0;
}
