// Reproduces Figure 8 of the paper: running time versus the average
// cluster dimensionality l in {4..8}. N = 100,000 (scaled), d = 20, k = 5.
// Following the paper, CLIQUE uses tau = 0.5 for l in {4, 5, 6} and
// tau = 0.1 for l in {7, 8} (higher-dimensional clusters are less dense,
// so the paper lowered the threshold).
//
// Expected shape: PROCLUS is nearly flat in l (its O(N*k*l) segmental
// term is dominated by the O(N*k*d) full-dimensional term), while
// CLIQUE's cost grows steeply with l (dense units must be mined level by
// level up to dimensionality l).

#include <cstdio>

#include "bench_util.h"
#include "clique/clique.h"
#include "common/timer.h"
#include "eval/report.h"

int main(int argc, char** argv) {
  using namespace proclus;
  using namespace proclus::bench;
  BenchOptions options = ParseOptions(argc, argv);

  PrintHeader("Figure 8: running time vs average cluster dimensionality");
  if (!JsonOutput())
    std::printf("# N=%zu, d=20, k=5; CLIQUE xi=10, tau=0.5%% (l<=6) / "
                "0.1%% (l>=7)\n",
                options.Points());
  TableWriter table({"l", "proclus_sec", "clique_sec", "clique_max_level"});

  for (size_t l : {4, 5, 6, 7, 8}) {
    GeneratorParams gen;
    gen.num_points = options.Points();
    gen.space_dims = 20;
    gen.num_clusters = 5;
    gen.cluster_dim_counts.assign(5, l);
    gen.outlier_fraction = 0.05;
    gen.seed = options.seed + l;
    auto data = GenerateSynthetic(gen);
    if (!data.ok()) return 1;

    ProclusParams params =
        DefaultProclus(5, static_cast<double>(l), options.seed);
    params.num_restarts = 1;  // Paper timing config: one hill climb.
    // Fixed hill-climb length: every sweep point does identical work, so
    // the curve shows per-iteration cost, not convergence noise.
    params.max_iterations = 60;
    params.max_no_improve = 60;
    Timer proclus_timer;
    auto proclus_result = RunProclus(data->dataset, params);
    double proclus_sec = proclus_timer.ElapsedSeconds();
    if (!proclus_result.ok()) return 1;

    CliqueParams clique_params;
    clique_params.xi = 10;
    clique_params.tau_percent = l >= 7 ? 0.1 : 0.5;
    clique_params.mdl_prune = false;  // Exhaustive miner for timing.
    Timer clique_timer;
    auto clique_result = RunClique(data->dataset, clique_params);
    double clique_sec = clique_timer.ElapsedSeconds();
    if (!clique_result.ok()) return 1;

    char l_buffer[16], p_buffer[32], c_buffer[32], level_buffer[16];
    std::snprintf(l_buffer, sizeof(l_buffer), "%zu", l);
    std::snprintf(p_buffer, sizeof(p_buffer), "%.3f", proclus_sec);
    std::snprintf(c_buffer, sizeof(c_buffer), "%.3f%s", clique_sec,
                  clique_result->truncated ? " (truncated)" : "");
    std::snprintf(level_buffer, sizeof(level_buffer), "%zu",
                  clique_result->max_level);
    table.AddRow({l_buffer, p_buffer, c_buffer, level_buffer});
  }
  PrintTable("fig8", table);
  FinishJson("fig8_scalability_l");
  return 0;
}
