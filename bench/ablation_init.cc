// Ablation: the two-step initialization (random sample + farthest-first
// greedy) versus a plain random candidate set. The paper argues (Section
// 2.1) that greedy alone picks outliers while pure random sampling may
// miss small clusters; the two-step method balances both.
//
// We compare final accuracy (matched accuracy and ARI) over several seeds
// on the Case 2 file, with and without the greedy step.

#include <cstdio>

#include "bench_util.h"
#include "eval/matching.h"
#include "eval/metrics.h"
#include "eval/report.h"

int main(int argc, char** argv) {
  using namespace proclus;
  using namespace proclus::bench;
  BenchOptions options = ParseOptions(argc, argv);

  // Keep the default quick-ish: 20k points unless --scale is raised.
  BenchOptions scaled = options;
  if (scaled.scale == 1.0) scaled.scale = 0.2;
  GeneratorParams gen = Case2Params(scaled);
  auto data = GenerateSynthetic(gen);
  if (!data.ok()) return 1;

  PrintHeader("Ablation: two-step initialization vs random candidates");
  PrintKV("N", static_cast<double>(gen.num_points));
  TableWriter table({"init", "seed", "matched_acc", "ARI", "iterations"});

  for (bool two_step : {true, false}) {
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      ProclusParams params = DefaultProclus(5, 4.0, seed);
      params.two_step_init = two_step;
      HarnessRun run = RunProclusHarness(*data, params);
      char acc_buffer[32], ari_buffer[32];
      std::snprintf(acc_buffer, sizeof(acc_buffer), "%.4f",
                    MatchedAccuracy(run.confusion));
      std::snprintf(ari_buffer, sizeof(ari_buffer), "%.4f",
                    AdjustedRandIndex(run.clustering.labels,
                                      data->truth.labels));
      table.AddRow({two_step ? "sample+greedy" : "random",
                    std::to_string(seed), acc_buffer, ari_buffer,
                    std::to_string(run.clustering.iterations)});
    }
  }
  PrintTable("init", table);
  FinishJson("ablation_init");
  return 0;
}
