// Ablation: contribution of the refinement phase and of the minDeviation
// bad-medoid threshold.
//
//  * refinement on/off: the final pass recomputes dimensions from actual
//    clusters (not localities) and handles outliers; the paper claims it
//    improves quality.
//  * minDeviation sweep: controls how aggressively small clusters have
//    their medoids replaced (paper default 0.1).

#include <cstdio>

#include "bench_util.h"
#include "eval/matching.h"
#include "eval/metrics.h"
#include "eval/report.h"

int main(int argc, char** argv) {
  using namespace proclus;
  using namespace proclus::bench;
  BenchOptions options = ParseOptions(argc, argv);
  BenchOptions scaled = options;
  if (scaled.scale == 1.0) scaled.scale = 0.2;
  GeneratorParams gen = Case1Params(scaled);
  auto data = GenerateSynthetic(gen);
  if (!data.ok()) return 1;

  PrintHeader("Ablation: refinement phase on/off");
  TableWriter refine_table(
      {"refinement", "seed", "matched_acc", "ARI", "outliers"});
  for (bool refine : {true, false}) {
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      ProclusParams params = DefaultProclus(5, 7.0, seed);
      params.refine = refine;
      HarnessRun run = RunProclusHarness(*data, params);
      char acc_buffer[32], ari_buffer[32];
      std::snprintf(acc_buffer, sizeof(acc_buffer), "%.4f",
                    MatchedAccuracy(run.confusion));
      std::snprintf(ari_buffer, sizeof(ari_buffer), "%.4f",
                    AdjustedRandIndex(run.clustering.labels,
                                      data->truth.labels));
      refine_table.AddRow({refine ? "on" : "off", std::to_string(seed),
                           acc_buffer, ari_buffer,
                           std::to_string(run.clustering.NumOutliers())});
    }
  }
  PrintTable("refinement", refine_table);

  PrintHeader("Ablation: minDeviation sweep (paper default 0.1)");
  TableWriter dev_table({"minDeviation", "matched_acc", "ARI", "iterations"});
  for (double dev : {0.01, 0.05, 0.1, 0.3, 0.5}) {
    ProclusParams params = DefaultProclus(5, 7.0, options.seed);
    params.min_deviation = dev;
    HarnessRun run = RunProclusHarness(*data, params);
    char dev_buffer[16], acc_buffer[32], ari_buffer[32];
    std::snprintf(dev_buffer, sizeof(dev_buffer), "%.2f", dev);
    std::snprintf(acc_buffer, sizeof(acc_buffer), "%.4f",
                  MatchedAccuracy(run.confusion));
    std::snprintf(ari_buffer, sizeof(ari_buffer), "%.4f",
                  AdjustedRandIndex(run.clustering.labels,
                                    data->truth.labels));
    dev_table.AddRow({dev_buffer, acc_buffer, ari_buffer,
                      std::to_string(run.clustering.iterations)});
  }
  PrintTable("minDeviation", dev_table);
  FinishJson("ablation_refinement");
  return 0;
}
