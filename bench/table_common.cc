#include "table_common.h"

#include <cstdio>

#include "eval/matching.h"
#include "eval/metrics.h"
#include "eval/report.h"

namespace proclus::bench {

int RunTableExperiment(const char* title, const GeneratorParams& gen_params,
                       double avg_dims, const BenchOptions& options,
                       TableKind kind) {
  PrintHeader(title);
  PrintKV("N", static_cast<double>(gen_params.num_points));
  PrintKV("d", static_cast<double>(gen_params.space_dims));
  PrintKV("k", static_cast<double>(gen_params.num_clusters));
  PrintKV("l (avg dims)", avg_dims);

  auto data = GenerateSynthetic(gen_params);
  if (!data.ok()) {
    std::fprintf(stderr, "generator failed: %s\n",
                 data.status().ToString().c_str());
    return 1;
  }

  ProclusParams params =
      DefaultProclus(gen_params.num_clusters, avg_dims, options.algo_seed);
  HarnessRun run = RunProclusHarness(*data, params);

  const size_t k = gen_params.num_clusters;
  if (kind == TableKind::kDimensions) {
    std::vector<size_t> truth_sizes = data->truth.ClusterSizes();
    std::vector<size_t> input_sizes(truth_sizes.begin(),
                                    truth_sizes.begin() + k);
    size_t input_outliers = truth_sizes[k];
    std::vector<size_t> output_sizes(k, 0);
    for (int label : run.clustering.labels)
      if (label != kOutlierLabel) ++output_sizes[static_cast<size_t>(label)];
    if (!JsonOutput())
      std::printf("%s\n",
                  RenderDimensionTable(data->truth.cluster_dims, input_sizes,
                                       input_outliers,
                                       run.clustering.dimensions,
                                       output_sizes,
                                       run.clustering.NumOutliers())
                      .c_str());
    // Dimension-recovery summary under the optimal matching.
    DimensionRecovery recovery = ScoreDimensionRecovery(
        run.clustering.dimensions, data->truth.cluster_dims, run.match);
    PrintKV("matched-dim mean Jaccard", recovery.mean_jaccard);
    PrintKV("matched-dim exact fraction", recovery.exact_fraction);
    for (size_t i = 0; i < k && !JsonOutput(); ++i) {
      std::printf("  output %zu -> input %s (dims found {%s} vs true {%s})\n",
                  i + 1,
                  run.match[i] >= 0
                      ? ClusterLetter(static_cast<size_t>(run.match[i]))
                            .c_str()
                      : "-",
                  run.clustering.dimensions[i].ToListString(1).c_str(),
                  run.match[i] >= 0
                      ? data->truth
                            .cluster_dims[static_cast<size_t>(run.match[i])]
                            .ToListString(1)
                            .c_str()
                      : "-");
    }
  } else {
    if (!JsonOutput())
      std::printf("%s\n", RenderConfusionTable(run.confusion).c_str());
    PrintKV("dominant accuracy", run.confusion.DominantAccuracy());
    PrintKV("matched accuracy", MatchedAccuracy(run.confusion));
    PrintKV("ARI", AdjustedRandIndex(run.clustering.labels,
                                     data->truth.labels));
  }
  PrintKV("output outliers", static_cast<double>(
                                 run.clustering.NumOutliers()));
  PrintKV("iterations", static_cast<double>(run.clustering.iterations));
  PrintKV("proclus seconds", run.seconds);
  PrintRunStats("proclus", run.clustering.stats);
  return 0;
}

}  // namespace proclus::bench
