// Cancellation + stall-hedging harness: how fast does a cancelled run
// return, and what does the shard watchdog buy on tail latency?
//
// Leg 1 — cancel latency. A fused PROCLUS fit runs over a sharded
// on-disk source while a second thread fires Cancel() at staggered
// points of the fit; we report the p50/p99 of (return time − cancel
// time). Cooperative per-block checks bound that latency by one block's
// work, so --smoke asserts p99 <= max(250 ms, 100 x the measured
// per-block cost) — a generous multiple that still catches a lost token
// (which would serve the rest of the fit, seconds not milliseconds).
// After the cancelled fits, a clean fit must reproduce the baseline
// bits: a cancelled run leaves no residue.
//
// Leg 2 — stall hedging A/B. Four memory shards scan under injected
// rare stalls (deterministic per-shard fault seeds), once without a
// watchdog and once with a soft deadline + hedged re-scans. Every scan
// of both legs must reproduce the unsharded reference bits (hedging is
// a latency lever, never a semantic one); --smoke additionally asserts
// that at least one hedge fired and that the hedged p99 beats the
// unhedged p99 (margin ~the injected stall vs the soft cap).
//
// Wired into ctest under the bench_smoke label (RUN_SERIAL: both legs
// are timing measurements).

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/cancel.h"
#include "common/timer.h"
#include "core/proclus.h"
#include "data/binary_io.h"
#include "data/engine.h"
#include "data/fault_source.h"
#include "data/sharded_source.h"

namespace {

using namespace proclus;
using namespace proclus::bench;
using std::chrono::duration;
using std::chrono::microseconds;
using std::chrono::steady_clock;

bool SameClustering(const ProjectedClustering& a,
                    const ProjectedClustering& b) {
  return a.labels == b.labels && a.medoids == b.medoids &&
         a.objective == b.objective && a.iterations == b.iterations &&
         a.improvements == b.improvements;
}

ProjectedClustering MustRun(const PointSource& source,
                            const ProclusParams& params,
                            double* seconds = nullptr) {
  Timer timer;
  auto result = RunProclusOnSource(source, params);
  if (seconds != nullptr) *seconds = timer.ElapsedSeconds();
  if (!result.ok()) {
    std::fprintf(stderr, "PROCLUS failed: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

uint64_t Bits(double value) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double Percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  return samples[static_cast<size_t>(pos + 0.5)];
}

// Block-ordered checksum: the per-block partial sums are merged in block
// order, so the total's bit pattern is the determinism witness every
// configuration (sharded, stalled, hedged) must reproduce.
class ChecksumConsumer final : public ScanConsumer {
 public:
  Status Prepare(const ScanGeometry& geometry) override {
    partials_.assign(geometry.num_blocks, 0.0);
    return Status::OK();
  }
  void ConsumeBlock(size_t block_index, size_t /*first_row*/,
                    std::span<const double> data,
                    size_t /*rows*/) override {
    double sum = 0.0;
    for (double v : data) sum += v;
    partials_[block_index] = sum;
  }
  Status Merge() override {
    total_ = 0.0;
    for (double v : partials_) total_ += v;
    return Status::OK();
  }
  double total() const { return total_; }

 private:
  std::vector<double> partials_;
  double total_ = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  BenchOptions options = ParseOptions(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;

  GeneratorParams gen = Case1Params(options);
  gen.num_points = options.Points(20000);
  auto data = GenerateSynthetic(gen);
  if (!data.ok()) {
    std::fprintf(stderr, "generator failed: %s\n",
                 data.status().ToString().c_str());
    return 1;
  }

  bool ok = true;

  // ---- Leg 1: cancel latency on a sharded on-disk fit. ----
  const std::string prefix =
      "/tmp/proclus_cancellation_" + std::to_string(::getpid());
  const std::string disk_path = prefix + ".bin";
  Status written = WriteBinaryFile(data->dataset, disk_path);
  if (!written.ok()) {
    std::fprintf(stderr, "snapshot write failed: %s\n",
                 written.ToString().c_str());
    return 1;
  }
  std::vector<std::string> cleanup = {disk_path};
  ShardSplitOptions split;
  split.num_shards = 4;
  auto manifest = SplitIntoShards(disk_path, prefix, split);
  if (!manifest.ok()) {
    std::fprintf(stderr, "split failed: %s\n",
                 manifest.status().ToString().c_str());
    return 1;
  }
  cleanup.push_back(*manifest);
  for (size_t s = 0; s < split.num_shards; ++s)
    cleanup.push_back(prefix + ".shard" + std::to_string(s) + ".bin");
  auto sharded_disk = ShardedSource::OpenManifest(*manifest);
  if (!sharded_disk.ok()) {
    std::fprintf(stderr, "manifest open failed: %s\n",
                 sharded_disk.status().ToString().c_str());
    return 1;
  }

  ProclusParams params = DefaultProclus(5, 7.0, options.algo_seed);
  params.num_restarts = 2;
  params.max_iterations = 30;
  params.max_no_improve = 30;
  params.block_rows = 512;

  PrintHeader("Cancel latency: fused fit on a sharded disk source");
  PrintKV("N", static_cast<double>(gen.num_points));
  PrintKV("d", static_cast<double>(gen.space_dims));
  PrintKV("shards", static_cast<double>(split.num_shards));
  PrintKV("block rows", static_cast<double>(params.block_rows));

  double baseline_seconds = 0.0;
  ProjectedClustering baseline =
      MustRun(*sharded_disk, params, &baseline_seconds);
  const double blocks_visited =
      static_cast<double>(baseline.stats.rows_visited) /
      static_cast<double>(params.block_rows);
  const double per_block_seconds =
      baseline_seconds / std::max(1.0, blocks_visited);
  PrintKV("baseline seconds", baseline_seconds);
  PrintKV("baseline objective", baseline.objective);
  PrintKV("blocks visited", blocks_visited);
  PrintKV("per-block seconds", per_block_seconds);

  // Fire the cancel at staggered fractions of the baseline duration so
  // the samples land in the bootstrap, the climb, and the refine legs.
  const double fractions[] = {0.15, 0.30, 0.45, 0.60, 0.75};
  std::vector<double> latency;
  size_t completed = 0;
  for (int round = 0; round < 3; ++round) {
    for (double frac : fractions) {
      CancelToken token;
      ProclusParams racing = params;
      racing.cancel.token = &token;
      const auto delay = duration<double>(frac * baseline_seconds);
      steady_clock::time_point cancel_at{};
      std::thread canceller([&token, &cancel_at, delay] {
        // Inactive context: sleeps the full delay via the sanctioned
        // primitive (the raw-sleep lint bans this_thread sleeps here).
        (void)InterruptibleSleep(
            std::chrono::duration_cast<std::chrono::nanoseconds>(delay),
            CancelContext{});
        cancel_at = steady_clock::now();
        token.Cancel();
      });
      auto result = RunProclusOnSource(*sharded_disk, racing);
      const steady_clock::time_point returned = steady_clock::now();
      canceller.join();
      if (result.ok()) {
        ++completed;  // The fit beat the cancel; no latency sample.
      } else if (result.status().code() == StatusCode::kCancelled) {
        latency.push_back(
            duration<double>(returned - cancel_at).count());
      } else {
        std::fprintf(stderr, "unexpected status: %s\n",
                     result.status().ToString().c_str());
        ok = false;
      }
    }
  }
  const double cancel_p50 = Percentile(latency, 0.50);
  const double cancel_p99 = Percentile(latency, 0.99);
  PrintKV("cancelled runs", static_cast<double>(latency.size()));
  PrintKV("completed before cancel", static_cast<double>(completed));
  PrintKV("cancel latency p50 seconds", cancel_p50);
  PrintKV("cancel latency p99 seconds", cancel_p99);

  // One block's work, with generous slack for scheduler noise: a lost
  // token would blow through this by orders of magnitude.
  const double latency_bound = std::max(0.25, 100.0 * per_block_seconds);
  PrintKV("cancel latency bound seconds", latency_bound);
  if (smoke) {
    if (latency.size() < 3) {
      std::fprintf(stderr,
                   "FAIL: only %zu cancelled samples; the fit is too "
                   "short to measure cancel latency\n",
                   latency.size());
      ok = false;
    }
    if (cancel_p99 > latency_bound) {
      std::fprintf(stderr,
                   "FAIL: cancel latency p99 %.4fs exceeds the "
                   "one-block bound %.4fs\n",
                   cancel_p99, latency_bound);
      ok = false;
    }
  }

  // A cancelled fit must leave no residue: the next clean fit on the
  // same source reproduces the baseline bits.
  ProjectedClustering after = MustRun(*sharded_disk, params);
  const bool clean_after = SameClustering(after, baseline);
  PrintKV("clean fit after cancels bit-identical",
          clean_after ? "yes" : "NO");
  if (!clean_after) {
    std::fprintf(stderr,
                 "FAIL: clean fit after cancelled fits drifted\n");
    ok = false;
  }

  // ---- Leg 2: stall hedging A/B on a stalled sharded scan. ----
  const Dataset& ds = data->dataset;
  const size_t rows = ds.size();
  const size_t block_rows = 512;
  // Shard boundaries aligned to the block size so the sharded scans
  // share the unsharded block geometry (and therefore its bits).
  const size_t per_shard = ((rows / 4) / block_rows) * block_rows;
  const size_t starts[4] = {0, per_shard, 2 * per_shard, 3 * per_shard};
  const size_t counts[4] = {per_shard, per_shard, per_shard,
                            rows - 3 * per_shard};

  MemorySource whole(ds);
  ChecksumConsumer reference;
  {
    ScanOptions reference_options;
    reference_options.block_rows = block_rows;
    Status status = ScanExecutor(reference_options).Run(whole, {&reference});
    if (!status.ok()) {
      std::fprintf(stderr, "reference scan failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
  }
  const uint64_t reference_bits = Bits(reference.total());

  const microseconds stall = microseconds(60000);
  const double stall_rate = 0.15;
  const size_t reps = 20;
  PrintHeader("Stall hedging A/B");
  PrintKV("rows", static_cast<double>(rows));
  PrintKV("shards", 4.0);
  PrintKV("stall seconds", duration<double>(stall).count());
  PrintKV("stall rate", stall_rate);
  PrintKV("scan repetitions", static_cast<double>(reps));

  struct LegResult {
    std::vector<double> seconds;
    uint64_t hedges = 0;
    bool identical = true;
  };
  // Both legs rebuild the fault decorators from the same seeds, so they
  // face the same initial stall schedule (hedged re-scans draw extra
  // faults, diverging later reps — deterministically, per the seeds).
  auto run_leg = [&](bool hedging) {
    std::vector<std::unique_ptr<PointSource>> slices;
    std::vector<std::unique_ptr<PointSource>> decorated;
    for (size_t s = 0; s < 4; ++s) {
      slices.push_back(std::make_unique<MemorySliceSource>(
          ds, starts[s], counts[s]));
      FaultPlan plan;
      plan.seed = 900 + s;
      plan.stall_rate = stall_rate;
      plan.stall = stall;
      decorated.push_back(std::make_unique<FaultInjectingPointSource>(
          *slices[s], plan));
    }
    auto sharded = ShardedSource::Create(std::move(decorated));
    if (!sharded.ok()) {
      std::fprintf(stderr, "shard build failed: %s\n",
                   sharded.status().ToString().c_str());
      std::exit(1);
    }
    LegResult leg;
    for (size_t rep = 0; rep < reps; ++rep) {
      RunStats stats;
      ScanOptions scan;
      scan.num_threads = 4;
      scan.block_rows = block_rows;
      scan.stats = &stats;
      if (hedging) {
        scan.shard_soft_deadline = microseconds(8000);
        scan.max_hedges_per_shard = 3;
      }
      ChecksumConsumer consumer;
      Timer timer;
      Status status = ScanExecutor(scan).Run(*sharded, {&consumer});
      leg.seconds.push_back(timer.ElapsedSeconds());
      if (!status.ok()) {
        std::fprintf(stderr, "stalled scan failed: %s\n",
                     status.ToString().c_str());
        std::exit(1);
      }
      if (Bits(consumer.total()) != reference_bits)
        leg.identical = false;
      leg.hedges += stats.hedged_scans;
    }
    return leg;
  };

  LegResult no_hedge = run_leg(false);
  LegResult hedged = run_leg(true);
  const double a_p50 = Percentile(no_hedge.seconds, 0.50);
  const double a_p99 = Percentile(no_hedge.seconds, 0.99);
  const double b_p50 = Percentile(hedged.seconds, 0.50);
  const double b_p99 = Percentile(hedged.seconds, 0.99);
  PrintKV("no-hedge p50 seconds", a_p50);
  PrintKV("no-hedge p99 seconds", a_p99);
  PrintKV("no-hedge bit-identical", no_hedge.identical ? "yes" : "NO");
  PrintKV("hedged p50 seconds", b_p50);
  PrintKV("hedged p99 seconds", b_p99);
  PrintKV("hedged bit-identical", hedged.identical ? "yes" : "NO");
  PrintKV("hedges fired", static_cast<double>(hedged.hedges));
  PrintKV("hedged p99 speedup", b_p99 > 0 ? a_p99 / b_p99 : 0.0);

  if (!no_hedge.identical || !hedged.identical) {
    std::fprintf(stderr,
                 "FAIL: a stalled scan drifted from the reference — "
                 "hedging must never change bits\n");
    ok = false;
  }
  if (smoke) {
    if (hedged.hedges == 0) {
      std::fprintf(stderr,
                   "FAIL: the watchdog never hedged; the A/B is not "
                   "exercising the hedging path\n");
      ok = false;
    }
    // The unhedged leg serves at least one full 60 ms stall at its tail;
    // the hedged leg caps every stall near the 8 ms soft deadline.
    if (a_p99 < duration<double>(stall).count() * 0.5) {
      std::fprintf(stderr,
                   "FAIL: no stall landed in the unhedged leg "
                   "(p99 %.4fs); the A/B measured nothing\n",
                   a_p99);
      ok = false;
    } else if (b_p99 >= a_p99) {
      std::fprintf(stderr,
                   "FAIL: hedged p99 %.4fs did not beat unhedged "
                   "p99 %.4fs\n",
                   b_p99, a_p99);
      ok = false;
    }
  }

  PrintKV("cancellation verdict", ok ? "bounded and bit-stable" : "FAIL");
  FinishJson("cancellation");
  for (const std::string& path : cleanup) std::remove(path.c_str());
  return ok ? 0 : 1;
}
