// Fault-injection resilience harness: what do storage faults cost, and do
// they ever change results?
//
// Sweeps FaultPlan fail rates over a disk-resident PROCLUS run (transient
// failures, detected corruption, and short reads at fail_rate/5 each),
// reporting the retry work (retries, failed scans, wasted rows, injected
// and absorbed fault counts) and wall time next to the fault-free
// baseline. Then a crash leg: a run killed mid-climb (kill_after_ops)
// leaves a checkpoint behind and is resumed on the healthy source.
//
// Every leg is compared bit-for-bit against the fault-free baseline —
// resilience must never change results, only survival. --smoke asserts
// exactly that (zero drift on every leg, at least one retry absorbed, and
// a successful kill+resume) and exits nonzero on any violation; wired
// into ctest under the bench_smoke label.

#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "core/model_io.h"
#include "data/binary_io.h"
#include "data/fault_source.h"
#include "data/point_source.h"

namespace {

using namespace proclus;
using namespace proclus::bench;

bool SameClustering(const ProjectedClustering& a,
                    const ProjectedClustering& b) {
  return a.labels == b.labels && a.medoids == b.medoids &&
         a.objective == b.objective && a.iterations == b.iterations &&
         a.improvements == b.improvements;
}

ProjectedClustering MustRun(const PointSource& source,
                            const ProclusParams& params,
                            double* seconds = nullptr) {
  Timer timer;
  auto result = RunProclusOnSource(source, params);
  if (seconds != nullptr) *seconds = timer.ElapsedSeconds();
  if (!result.ok()) {
    std::fprintf(stderr, "PROCLUS failed: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions options = ParseOptions(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;

  GeneratorParams gen = Case1Params(options);
  gen.num_points = options.Points(20000);
  auto data = GenerateSynthetic(gen);
  if (!data.ok()) {
    std::fprintf(stderr, "generator failed: %s\n",
                 data.status().ToString().c_str());
    return 1;
  }

  ProclusParams params = DefaultProclus(5, 7.0, options.algo_seed);
  // Fix the climb length so every leg does identical work and the
  // counters are reproducible.
  params.num_restarts = 2;
  params.max_iterations = 30;
  params.max_no_improve = 30;

  const std::string disk_path = "/tmp/proclus_fault_injection_" +
                                std::to_string(::getpid()) + ".bin";
  Status written = WriteBinaryFile(data->dataset, disk_path);
  if (!written.ok()) {
    std::fprintf(stderr, "snapshot write failed: %s\n",
                 written.ToString().c_str());
    return 1;
  }
  auto disk = DiskSource::Open(disk_path);
  if (!disk.ok()) {
    std::fprintf(stderr, "snapshot open failed: %s\n",
                 disk.status().ToString().c_str());
    return 1;
  }

  PrintHeader("Fault injection: retry + checkpoint/resume");
  PrintKV("N", static_cast<double>(gen.num_points));
  PrintKV("d", static_cast<double>(gen.space_dims));
  PrintKV("k", static_cast<double>(gen.num_clusters));
  PrintKV("restarts", static_cast<double>(params.num_restarts));
  PrintKV("max iterations", static_cast<double>(params.max_iterations));
  PrintKV("retry max attempts",
          static_cast<double>(params.retry.max_attempts));

  double baseline_seconds = 0.0;
  ProjectedClustering baseline =
      MustRun(*disk, params, &baseline_seconds);
  PrintKV("baseline seconds", baseline_seconds);
  PrintKV("baseline objective", baseline.objective);
  PrintRunStats("baseline", baseline.stats);

  bool ok = true;
  uint64_t total_retries = 0;

  // --- Sweep: fault rate vs retry work, results pinned to baseline. ---
  const double fail_rates[] = {0.02, 0.05, 0.10, 0.20};
  for (double fail_rate : fail_rates) {
    FaultPlan plan;
    plan.seed = options.algo_seed + 177;
    plan.fail_rate = fail_rate;
    plan.corrupt_rate = fail_rate / 5;
    plan.short_read_rate = fail_rate / 5;
    FaultInjectingPointSource faulty(*disk, plan);

    char label[64];
    std::snprintf(label, sizeof(label), "fail=%.2f", fail_rate);
    double seconds = 0.0;
    ProjectedClustering run = MustRun(faulty, params, &seconds);
    const FaultCounters counters = faulty.fault_counters();

    PrintHeader(std::string("Sweep ") + label);
    PrintKV(std::string(label) + " seconds", seconds);
    PrintKV(std::string(label) + " slowdown",
            baseline_seconds > 0 ? seconds / baseline_seconds : 0.0);
    PrintKV(std::string(label) + " operations",
            static_cast<double>(counters.operations));
    PrintKV(std::string(label) + " injected scan faults",
            static_cast<double>(counters.injected_scan_faults));
    PrintKV(std::string(label) + " injected fetch faults",
            static_cast<double>(counters.injected_fetch_faults));
    PrintKV(std::string(label) + " injected corruptions",
            static_cast<double>(counters.injected_corruptions));
    PrintKV(std::string(label) + " injected short reads",
            static_cast<double>(counters.injected_short_reads));
    PrintKV(std::string(label) + " absorbed",
            static_cast<double>(counters.absorbed));
    PrintKV(std::string(label) + " retries",
            static_cast<double>(run.stats.retries));
    PrintKV(std::string(label) + " failed scans",
            static_cast<double>(run.stats.failed_scans));
    PrintKV(std::string(label) + " wasted rows",
            static_cast<double>(run.stats.wasted_rows));

    const bool identical = SameClustering(run, baseline);
    PrintKV(std::string(label) + " bit-identical",
            identical ? "yes" : "NO");
    if (!identical) {
      std::fprintf(stderr, "FAIL: %s drifted from the baseline\n", label);
      ok = false;
    }
    total_retries += run.stats.retries;
  }

  // --- Crash leg: kill mid-climb, resume from the checkpoint. ---
  const std::string ck_path = "/tmp/proclus_fault_injection_" +
                              std::to_string(::getpid()) + ".pckp";
  std::remove(ck_path.c_str());
  ProclusParams ck_params = params;
  ck_params.checkpoint.path = ck_path;
  ck_params.checkpoint.every_iterations = 8;

  FaultPlan crash_plan;
  crash_plan.kill_after_ops = 60;
  FaultInjectingPointSource dying(*disk, crash_plan);
  auto crashed = RunProclusOnSource(dying, ck_params);
  const bool crash_happened = !crashed.ok();
  PrintHeader("Crash + resume");
  PrintKV("crash killed the run", crash_happened ? "yes" : "NO");
  const bool checkpoint_left = LoadCheckpointFile(ck_path).ok();
  PrintKV("checkpoint left behind", checkpoint_left ? "yes" : "NO");
  if (!crash_happened || !checkpoint_left) {
    std::fprintf(stderr,
                 "FAIL: crash leg did not leave a resumable checkpoint\n");
    ok = false;
  } else {
    double resume_seconds = 0.0;
    ProjectedClustering resumed =
        MustRun(*disk, ck_params, &resume_seconds);
    PrintKV("resume seconds", resume_seconds);
    PrintKV("resume fraction of baseline",
            baseline_seconds > 0 ? resume_seconds / baseline_seconds
                                 : 0.0);
    const bool identical = SameClustering(resumed, baseline);
    PrintKV("resume bit-identical", identical ? "yes" : "NO");
    if (!identical) {
      std::fprintf(stderr, "FAIL: resumed run drifted from baseline\n");
      ok = false;
    }
  }

  if (smoke && total_retries == 0) {
    std::fprintf(stderr,
                 "FAIL: the sweep never retried; fault injection is not "
                 "exercising the retry path\n");
    ok = false;
  }
  PrintKV("total sweep retries", static_cast<double>(total_retries));
  PrintKV("resilience verdict", ok ? "zero drift" : "DRIFT");

  FinishJson("fault_injection");
  std::remove(disk_path.c_str());
  std::remove(ck_path.c_str());
  if (!ok) return 1;
  return 0;
}
